"""Micro-batch execution core: one flush, one batched MBA traversal.

:class:`BatchEngine` owns the *target* side of the service.  The dataset
is indexed at startup and published as **epoch 0** of a refcounted
version chain (:class:`~repro.storage.versioning.VersionManager`); every
flush pins one epoch, runs start-to-finish against that epoch's
read-only snapshot — the same discipline :mod:`repro.parallel` uses for
worker processes — and releases it, so a long-lived service can never
mutate the store it queries and every flush accounts exactly for its
own I/O.

The **write path** layers on top without touching any published page:

* :meth:`insert` / :meth:`delete` update a mutable mirror of the full
  dataset (:class:`~repro.index.mutable.MutableMBRQT` or
  :class:`~repro.index.mutable.MutableRStar` — the canonical write-side
  structure) *and* record the operation in an LSM-style
  :class:`~repro.index.delta.DeltaIndex`;
* queries over-fetch the pinned base epoch by the tombstone count and
  merge the frozen delta view into every answer
  (:func:`~repro.index.delta.merge_answer`) — updates are visible
  immediately, exactly, without any base-index mutation;
* :meth:`compact` persists the mutable mirror as a fresh epoch
  (copy-on-write: its own builder manager, snapshot and read-only
  reopen), publishes it, and prunes the folded delta operations.
  In-flight flushes finish on their pinned epoch; the swap is a pointer
  move with zero rejected or lost requests.

Per flush, the engine packs the coalesced query points into a tiny
query-side MBRQT (built in a scratch manager, so its build/read I/O is
charged to the batch that needed it) and answers all of them with one
:func:`~repro.core.mba.mba_join` traversal — the paper's batching
thesis applied to an online arrival stream.  Three execution modes:

* ``singleton`` — a flush of one request skips the scratch index and
  runs plain incremental browsing (:func:`~repro.index.queries.
  nearest_iter`); micro-batching degrades gracefully to exactly the
  one-at-a-time baseline.
* ``batched`` — the default: scratch MBRQT + one MBA traversal.
* ``sharded`` — flushes of at least ``parallel_threshold`` requests
  with ``workers > 1`` split the scratch index into subtree shards
  (:func:`~repro.parallel.sharding.pack_shards`) and traverse them on
  worker threads, each against its own read-only reopen of both
  snapshots with an exact-partition slice of the pool budget.

Past-deadline requests never ride the exact traversal: they get a
*budgeted browse* — ``nearest_iter`` abandoned after ``degrade_budget``
node expansions — returning the best candidates found so far, flagged
approximate, so one late request cannot stall the whole batch.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass
from typing import ContextManager, Sequence

import numpy as np

from ..core.geometry import Rect
from ..core.frontier import frontier_join
from ..core.mba import mba_join
from ..core.result import NeighborResult
from ..core.stats import QueryStats
from ..index.base import PagedIndex, PagedIndexSpec, ShardRoot
from ..index.delta import DeltaIndex, DeltaView, merge_answer
from ..index.mbrqt import build_mbrqt
from ..index.mutable import MutableMBRQT, MutableRStar
from ..index.queries import nearest_iter
from ..index.rstar import build_rstar
from ..obs.tracer import Tracer
from ..parallel.sharding import pack_shards, shard_seed_bound
from ..storage.manager import (
    StorageManager,
    StorageSnapshot,
    worker_node_cache_entries,
    worker_pool_pages,
)
from ..storage.versioning import IndexVersion, VersionManager
from .config import ServiceConfig
from .request import Request

__all__ = ["BatchEngine", "FlushOutcome", "RawAnswer", "execute_pinned", "fold_io"]

#: Pool budget of the per-flush scratch manager holding the query-side
#: index.  The scratch tree is tiny (max_batch points); a handful of
#: pages is plenty and keeps the batch's own memory footprint honest.
SCRATCH_POOL_PAGES = 8

#: ``request_id -> (neighbor_ids, distances, approximate)``.
RawAnswer = tuple[tuple[int, ...], tuple[float, ...], bool]


@dataclass(frozen=True)
class FlushOutcome:
    """What one flush produced: per-request answers plus attribution."""

    answers: dict[int, RawAnswer]
    stats: QueryStats
    mode: str
    """``"singleton"``, ``"batched"``, ``"sharded"``, or ``"degraded"``
    (every request in the flush was past deadline)."""
    n_exact: int
    n_degraded: int
    epoch: int = 0
    """The base-index epoch this flush was pinned to."""


class BatchEngine:
    """Answers flushed batches against a pinned, read-only base epoch,
    merging the in-memory delta into every answer."""

    def __init__(
        self,
        points: np.ndarray,
        config: ServiceConfig,
        point_ids: np.ndarray | None = None,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError(
                f"target dataset must be a non-empty (n, D) array, got shape {points.shape}"
            )
        self.config = config
        self.dims = int(points.shape[1])
        if point_ids is None:
            point_ids = np.arange(len(points), dtype=np.int64)
        else:
            point_ids = np.asarray(point_ids, dtype=np.int64)
            if point_ids.shape != (len(points),):
                raise ValueError("point_ids must match points in cardinality")
        # The write path: a mutable mirror of the full current dataset
        # (what compaction persists) plus the pending-operation delta
        # (what queries merge).  Both live behind _lock.
        self._lock = threading.Lock()  # guards _writer / delta / publishes
        # guarded-by: _lock
        self._writer: MutableMBRQT | MutableRStar = self._new_writer(points)
        for pid, point in zip(point_ids, points):
            self._writer.insert(point, int(pid))
        self.delta = DeltaIndex(self.dims)
        # Epoch 0: persist the initial dataset and publish it.  The
        # serving path only ever sees read-only reopens, so no request
        # can write a published page.
        self.versions = VersionManager(self._build_version(0))

    def _new_writer(self, points: np.ndarray) -> MutableMBRQT | MutableRStar:
        if self.config.kind == "mbrqt":
            return MutableMBRQT(
                Rect.from_points(points), page_size=self.config.page_size
            )
        return MutableRStar(self.dims, page_size=self.config.page_size)

    def _build_version(self, epoch: int) -> IndexVersion:
        """Persist the mutable mirror as one immutable epoch (COW).

        Each epoch gets a *fresh* builder manager — no page of a
        published epoch is ever rewritten — then the snapshot is
        reopened read-only with the serving budgets, exactly like the
        startup build always did.
        """
        builder = StorageManager(
            page_size=self.config.page_size,
            pool_pages=self.config.pool_pages,
            node_cache_entries=self.config.node_cache_entries,
        )
        index = self._writer.persist(builder)
        spec = index.detach()
        snapshot = builder.snapshot()
        manager = StorageManager.reopen(
            snapshot,
            pool_pages=self.config.pool_pages,
            node_cache_entries=self.config.node_cache_entries,
        )
        return IndexVersion(
            epoch=epoch,
            snapshot=snapshot,
            spec=spec,
            manager=manager,
            index=PagedIndex.attach(spec, manager),
            size=int(index.size),
        )

    # -- version-compatible views (current epoch) ----------------------------

    @property
    def manager(self) -> StorageManager:
        """The current epoch's read-only manager (metadata/bench reads)."""
        return self.versions.current.manager

    @property
    def index(self) -> PagedIndex:
        return self.versions.current.index

    @property
    def snapshot(self) -> StorageSnapshot:
        return self.versions.current.snapshot

    @property
    def size(self) -> int:
        """Points in the current base epoch (excludes pending delta)."""
        return self.versions.current.size

    @property
    def epoch(self) -> int:
        return self.versions.epoch

    def layer_counters(self) -> dict[str, float]:
        """Storage counters of the *current* epoch's manager.

        A delegating callable (not a bound method of one manager) so a
        long-lived trace source keeps reading the live epoch across hot
        swaps.
        """
        return self.versions.current.manager.layer_counters()

    # -- the write path ------------------------------------------------------

    @property
    def pending_ops(self) -> int:
        """Delta operations not yet folded into a published epoch."""
        with self._lock:
            return self.delta.n_ops

    def insert(self, point: np.ndarray, point_id: int) -> None:
        """Insert one point: mutable mirror + delta, visible immediately."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dims,):
            raise ValueError(
                f"point must have shape ({self.dims},), got {point.shape}"
            )
        with self._lock:
            if point_id in self._writer:
                raise ValueError(f"point_id {point_id} already present")
            self._widen_writer(point)
            self._writer.insert(point, point_id)
            self.delta.insert(point, point_id)

    def delete(self, point_id: int) -> bool:
        """Delete by id; ``False`` when the id is not present."""
        with self._lock:
            if not self._writer.delete(point_id):
                return False
            self.delta.delete(point_id)
            return True

    def _widen_writer(self, point: np.ndarray) -> None:
        """Grow the MBRQT universe to admit an out-of-bounds insert.

        The regular decomposition's root cell is fixed per tree, so a
        point outside it forces a rebuild under the widened universe —
        rare (the universe only ever grows) and linear in the mirror
        size.  Insertion-sequence order is preserved, so the canonical
        tree shape stays a pure function of the surviving points.
        """
        writer = self._writer
        if not isinstance(writer, MutableMBRQT) or writer.universe.contains_point(point):
            return
        ids, pts = writer.points()
        fresh = MutableMBRQT(
            writer.universe.union_point(point),
            bucket_capacity=writer.bucket_capacity,
            node_capacity=writer.node_capacity,
            merge_buckets=writer.merge_buckets,
        )
        for pid, pt in zip(ids, pts):
            fresh.insert(pt, int(pid))
        self._writer = fresh

    def compact(self) -> int | None:
        """Fold the pending delta into a freshly built, published epoch.

        Returns the new epoch number, or ``None`` when the delta was
        empty (no epoch published).  Runs under the update lock — writes
        block for the rebuild, queries do not: in-flight flushes keep
        their pinned epoch, later flushes pin the new one.
        """
        with self._lock:
            if self.delta.n_ops == 0:
                return None
            view = self.delta.freeze()
            version = self._build_version(self.versions.epoch + 1)
            self.versions.publish(version)
            self.delta.prune_through(view)
            return version.epoch

    # -- flush execution -----------------------------------------------------

    def execute(
        self,
        requests: Sequence[Request],
        now_s: float,
        trace: Tracer | None = None,
    ) -> FlushOutcome:
        """Answer one flushed batch; every request gets an answer.

        ``now_s`` is the flush instant on the service clock — the instant
        deadlines are judged against, so degradation is a property of the
        batch, deterministic under a fake clock.

        The flush pins ``(epoch, delta view)`` atomically at entry and
        runs to completion against that pair: a compaction publishing
        mid-flush affects only later flushes.
        """
        if not requests:
            raise ValueError("cannot execute an empty batch")
        with self._lock:
            version = self.versions.pin()
            delta = self.delta.freeze()
        try:
            return execute_pinned(self.config, requests, now_s, version, delta, trace)
        finally:
            self.versions.release(version)


# -- the shared flush path ---------------------------------------------------
#
# Module-level on purpose: :class:`BatchEngine` (the single-process
# service) and :mod:`repro.serve.replica` (mapped-epoch worker
# processes) execute flushes through these *same* functions, so replica
# answers are bit-identical to the single-process service by
# construction — one code path, parameterised only by the config and
# the pinned (version, delta) pair.


def execute_pinned(
    config: ServiceConfig,
    requests: Sequence[Request],
    now_s: float,
    version: IndexVersion,
    delta: DeltaView,
    trace: Tracer | None = None,
) -> FlushOutcome:
    """Answer one flushed batch against an already-pinned epoch.

    The caller owns the pin/release bracket (and the delta freeze);
    this function never touches the version chain.  Mapped epochs
    (``version.snapshot is None``) are valid for every mode except
    ``sharded``, which needs a snapshot for its worker threads to
    re-reopen.
    """
    if config.cold_flush:
        version.manager.drop_caches()
    version.manager.reset_counters()
    stats = QueryStats()
    answers: dict[int, RawAnswer] = {}
    live = [r for r in requests if not r.past_deadline(now_s)]
    late = [r for r in requests if r.past_deadline(now_s)]

    def stage(name: str) -> ContextManager[None]:
        return trace.stage(name) if trace is not None else nullcontext()

    with ExitStack() as scope:
        if trace is not None and not trace.has_source("stats"):
            scope.enter_context(trace.source("stats", stats.as_dict))
        t0 = time.process_time()
        with stage("degrade"):
            for request in late:
                answers[request.request_id] = _budgeted_browse(
                    config, request, stats, version, delta
                )
        mode = "degraded"
        if live and version.size == 0:
            # Fully-tombstoned base: every answer comes from the
            # delta alone (a merge against zero base candidates).
            mode = "singleton" if len(live) == 1 else "batched"
            with stage("traverse"):
                for request in live:
                    ids, dists = merge_answer(
                        np.empty(0, dtype=np.int64),
                        np.empty(0),
                        request.point,
                        request.k,
                        delta,
                    )
                    answers[request.request_id] = (ids, dists, False)
        elif len(live) == 1:
            mode = "singleton"
            with stage("traverse"):
                answers[live[0].request_id] = _exact_single(
                    live[0], stats, version, delta
                )
        elif live:
            # Over-fetch by the tombstone count: each tombstone can
            # mask at most one base candidate, so k survivors remain.
            kmax = max(r.k for r in live) + delta.n_tombstones
            use_shards = (
                config.workers > 1 and len(live) >= config.parallel_threshold
            )
            mode = "sharded" if use_shards else "batched"
            with stage("traverse"):
                if use_shards:
                    result = _sharded_join(config, live, kmax, stats, trace, version)
                else:
                    result = _batched_join(config, live, kmax, stats, trace, version)
            for i, request in enumerate(live):
                bucket = result.neighbors_of(i)[: request.k + delta.n_tombstones]
                ids, dists = merge_answer(
                    np.asarray([s_id for __, s_id in bucket], dtype=np.int64),
                    np.asarray([dist for dist, __ in bucket]),
                    request.point,
                    request.k,
                    delta,
                )
                answers[request.request_id] = (ids, dists, False)
        stats.cpu_time_s += time.process_time() - t0
    fold_io(version.manager, stats)
    return FlushOutcome(
        answers=answers,
        stats=stats,
        mode=mode,
        n_exact=len(live),
        n_degraded=len(late),
        epoch=version.epoch,
    )


# -- execution modes ---------------------------------------------------------


def _exact_single(
    request: Request,
    stats: QueryStats,
    version: IndexVersion,
    delta: DeltaView,
) -> RawAnswer:
    """Singleton fallback: incremental browsing, first k results.

    With an empty delta, bit-identical to a standalone
    ``nearest_iter`` over the same store — the golden test's baseline
    and the B=1 service mode.  With a delta, over-fetched by the
    tombstone count and merged.
    """
    k_eff = request.k + delta.n_tombstones
    ids: list[int] = []
    dists: list[float] = []
    for dist, point_id, __ in nearest_iter(version.index, request.point, stats):
        ids.append(point_id)
        dists.append(dist)
        if len(ids) >= k_eff:
            break
    merged_ids, merged_dists = merge_answer(
        np.asarray(ids, dtype=np.int64), np.asarray(dists),
        request.point, request.k, delta,
    )
    return merged_ids, merged_dists, False


def _budgeted_browse(
    config: ServiceConfig,
    request: Request,
    stats: QueryStats,
    version: IndexVersion,
    delta: DeltaView,
) -> RawAnswer:
    """Graceful degradation: browse under a node-expansion budget.

    The generator's frontier is exact at every step, so whatever it
    has yielded when the budget runs out is the true ordered prefix
    of the k-NN (over base ⊎ delta after the merge) — possibly
    short, never wrong — flagged approximate because completeness
    was sacrificed.
    """
    budget = config.degrade_budget
    k_eff = request.k + delta.n_tombstones
    ids: list[int] = []
    dists: list[float] = []
    if budget > 0:
        start = stats.node_expansions
        for dist, point_id, __ in nearest_iter(version.index, request.point, stats):
            ids.append(point_id)
            dists.append(dist)
            if len(ids) >= k_eff or stats.node_expansions - start >= budget:
                break
    merged_ids, merged_dists = merge_answer(
        np.asarray(ids, dtype=np.int64), np.asarray(dists),
        request.point, request.k, delta,
    )
    return merged_ids, merged_dists, True


def _build_query_index(
    config: ServiceConfig,
    points: np.ndarray,
    storage: StorageManager,
    point_ids: np.ndarray | None,
    universe: Rect | None = None,
) -> PagedIndex:
    if config.kind == "mbrqt":
        return build_mbrqt(points, storage, point_ids=point_ids, universe=universe)
    return build_rstar(points, storage, point_ids=point_ids)


def _scratch_index(
    config: ServiceConfig,
    live: Sequence[Request],
    storage: StorageManager,
    version: IndexVersion,
) -> PagedIndex:
    """Pack the batch's query points into a tiny query-side index.

    Query ids are batch positions (0..n-1), so the join result maps
    straight back to requests.  The MBRQT universe is widened to
    cover the target's root cell: queries may fall outside the
    target's bounding box, and a shared universe keeps the partition
    boundaries aligned where the two trees overlap (Section 3.2).
    """
    q_points = np.stack([r.point for r in live])
    universe = None
    if config.kind == "mbrqt":
        root = version.index.root_rect
        universe = Rect(
            np.minimum(q_points.min(axis=0), root.lo),
            np.maximum(q_points.max(axis=0), root.hi),
        )
    return _build_query_index(
        config,
        q_points,
        storage,
        np.arange(len(live), dtype=np.int64),
        universe=universe,
    )


def _batched_join(
    config: ServiceConfig,
    live: Sequence[Request],
    kmax: int,
    stats: QueryStats,
    trace: Tracer | None,
    version: IndexVersion,
) -> NeighborResult:
    scratch = StorageManager(
        page_size=config.page_size, pool_pages=SCRATCH_POOL_PAGES
    )
    q_index = _scratch_index(config, live, scratch, version)
    if config.frontier_flush:
        result, __ = frontier_join(
            q_index,
            version.index,
            metric=config.metric,
            k=kmax,
            exclude_self=False,
            stats=stats,
            trace=trace,
        )
    else:
        result, __ = mba_join(
            q_index,
            version.index,
            metric=config.metric,
            k=kmax,
            exclude_self=False,
            stats=stats,
            trace=trace,
        )
    fold_io(scratch, stats)
    return result


def _sharded_join(
    config: ServiceConfig,
    live: Sequence[Request],
    kmax: int,
    stats: QueryStats,
    trace: Tracer | None,
    version: IndexVersion,
) -> NeighborResult:
    """Large flush: shard the scratch index across worker threads.

    Reuses the :mod:`repro.parallel` planning machinery (subtree
    roots, LPT bin-packing, Lemma 3.2 seed bounds); each thread
    reopens *both* snapshots read-only with its own exact-partition
    slice of the pool budget, so threads share no mutable storage
    state and the aggregate pool memory of a sharded flush never
    exceeds the serial flush's.
    """
    base_snapshot = version.snapshot
    if base_snapshot is None:
        raise ValueError(
            "sharded flush needs version.snapshot; mapped epochs serve workers=1"
        )
    n_workers = config.workers
    scratch = StorageManager(
        page_size=config.page_size, pool_pages=SCRATCH_POOL_PAGES
    )
    q_index = _scratch_index(config, live, scratch, version)
    roots = q_index.shard_roots(min_roots=n_workers)
    shards = pack_shards(roots, n_workers)
    q_spec = q_index.detach()
    q_snapshot = scratch.snapshot()
    fold_io(scratch, stats)
    seeds = [
        tuple(
            shard_seed_bound(
                root.rect, version.index.root_rect, version.size,
                config.metric, kmax,
            )
            for root in shard
        )
        for shard in shards
    ]
    stats.record_distances(sum(len(s) for s in seeds))

    def run_shard(
        shard_id: int, shard: list[ShardRoot], shard_seeds: tuple[float, ...]
    ) -> tuple[NeighborResult, QueryStats]:
        # Per-shard budget shares partition the serial budgets
        # exactly (shard i of n gets share i, not every shard the
        # same over-counted slice).
        target = StorageManager.reopen(
            base_snapshot,
            pool_pages=worker_pool_pages(
                config.pool_pages, len(shards), shard_id
            ),
            node_cache_entries=worker_node_cache_entries(
                config.node_cache_entries, len(shards), shard_id
            ),
        )
        s_index = PagedIndex.attach(version.spec, target)
        q_manager = StorageManager.reopen(
            q_snapshot,
            pool_pages=worker_pool_pages(SCRATCH_POOL_PAGES, len(shards), shard_id),
        )
        q_shard = PagedIndex.attach(q_spec, q_manager)
        # No per-thread CPU timing: ``process_time`` already sums the
        # CPU of every thread in the process, so the flush-level delta
        # in :func:`execute_pinned` covers shard work without double
        # counting.
        local = QueryStats()
        merged = NeighborResult(kmax)
        for root, seed in zip(shard, shard_seeds):
            part, __ = mba_join(
                q_shard,
                s_index,
                metric=config.metric,
                k=kmax,
                exclude_self=False,
                stats=local,
                root_entry=root,
                seed_bound=seed,
            )
            merged.merge(part)
        fold_io(target, local)
        fold_io(q_manager, local)
        return merged, local

    with ThreadPoolExecutor(max_workers=len(shards)) as pool:
        outcomes = list(pool.map(run_shard, range(len(shards)), shards, seeds))
    result = NeighborResult(kmax)
    for merged, local in outcomes:
        result.merge(merged)
        stats.merge(local)
    if trace is not None:
        trace.counter("service.shard_flush_threads", len(shards))
    return result


def fold_io(manager: StorageManager, stats: QueryStats) -> None:
    """Absorb a manager's I/O counters into the batch's stats."""
    io = manager.io_snapshot()
    stats.logical_reads += io["logical_reads"]
    stats.page_misses += io["page_misses"]
    stats.io_time_s += io["io_time_s"]
    stats.node_cache_hits += io["node_cache_hits"]
    stats.node_cache_misses += io["node_cache_misses"]
