"""Shared infrastructure for the figure-reproduction benchmarks.

Each benchmark runs one of the paper's experiments end to end, prints the
resulting text table (the analogue of the paper's bar/line chart), and
writes it under ``benchmarks/results/`` for EXPERIMENTS.md.

Workload sizes follow ``repro.bench.BenchConfig`` and scale with the
``REPRO_BENCH_SCALE`` environment variable (default 1.0 — the scaled tier
documented in DESIGN.md; larger values approach paper scale at the cost
of runtime).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a result table and persist it for EXPERIMENTS.md."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
