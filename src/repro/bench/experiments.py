"""The paper's experiments (Section 4), parameterised to a scaled tier.

Each function reproduces one figure and returns structured rows; the
pytest-benchmark wrappers in ``benchmarks/`` execute them and write the
text tables next to the paper-reported shapes (see EXPERIMENTS.md).

Scaling discipline (documented in DESIGN.md): the paper runs 500K–700K
points against 8 KB pages, i.e. trees of ~2000 leaves.  Pure Python runs
~10^3x slower per operation, so the scaled tier keeps the *tree geometry*
comparable by shrinking pages along with cardinality (default 2 KB pages,
512 KB pool = 256 pages — the same pool-to-index ratio regime), while
the ``REPRO_BENCH_SCALE`` environment variable lets a patient user grow
the workloads toward paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..api import build_index
from ..core.mba import mba_join
from ..core.pruning import PruningMetric
from ..data import gstd
from ..data.datasets import fc_surrogate, tac_surrogate
from ..join.bnn import bnn_join
from ..join.gorder import gorder_join
from ..storage.manager import StorageManager
from .harness import MethodRun, run_method

__all__ = [
    "BenchConfig",
    "fig3a_tac_methods",
    "fig3b_bufferpool",
    "fig4_dimensionality",
    "fig5_aknn_tac",
    "fig6_aknn_fc",
    "ablation_traversal_variants",
    "ablation_filter_stage",
    "ablation_count_bound",
]

KB = 1024
MB = 1024 * KB


@dataclass
class BenchConfig:
    """Workload sizes and storage geometry for the benchmark suite."""

    page_size: int = 2 * KB
    pool_bytes: int = 512 * KB
    tac_n: int = 20_000
    fc_n: int = 9_000
    syn_n: int = 12_000
    aknn_tac_n: int = 8_000
    aknn_fc_n: int = 3_000
    aknn_ks: tuple = (10, 20, 30, 40, 50)
    seed: int = 7
    gorder_block: int = 256

    @classmethod
    def from_env(cls) -> "BenchConfig":
        """Scale dataset sizes by ``REPRO_BENCH_SCALE`` (default 1.0)."""
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        cfg = cls()
        for name in ("tac_n", "fc_n", "syn_n", "aknn_tac_n", "aknn_fc_n"):
            setattr(cfg, name, max(500, int(getattr(cfg, name) * scale)))
        return cfg

    def storage(
        self, pool_bytes: int | None = None, page_size: int | None = None
    ) -> StorageManager:
        """A fresh storage manager with this config's (or overridden) geometry."""
        return StorageManager.with_pool_bytes(
            pool_bytes if pool_bytes is not None else self.pool_bytes,
            page_size if page_size is not None else self.page_size,
        )

    @property
    def page_size_10d(self) -> int:
        """Page size for the 10-D experiments.

        Fanout is what shapes tree behaviour, and entries grow linearly
        with D: an 8 KB page holds ~46 internal entries at D=10 — the
        paper's own geometry — whereas the 2 KB page used for the scaled
        2-D tier would collapse 10-D fanout to 11 and make every method
        degenerate for a storage reason, not an algorithmic one.
        """
        return 8 * KB


# ---------------------------------------------------------------------------
# Figure 3(a): TAC — BNN/RBA/MBA x {MAXMAXDIST, NXNDIST} + GORDER
# ---------------------------------------------------------------------------


def fig3a_tac_methods(cfg: BenchConfig | None = None) -> list[MethodRun]:
    """All seven bars of Figure 3(a) on the TAC surrogate (self ANN join)."""
    cfg = cfg or BenchConfig.from_env()
    pts = tac_surrogate(cfg.tac_n, seed=cfg.seed)
    runs: list[MethodRun] = []

    storage_q = cfg.storage()
    mbrqt = build_index(pts, storage_q, kind="mbrqt")
    storage_r = cfg.storage()
    rstar = build_index(pts, storage_r, kind="rstar")

    for metric in (PruningMetric.MAXMAXDIST, PruningMetric.NXNDIST):
        runs.append(
            run_method(
                f"BNN {metric}",
                lambda m=metric: bnn_join(rstar, pts, metric=m, exclude_self=True),
                storage_r,
            )
        )
    for metric in (PruningMetric.MAXMAXDIST, PruningMetric.NXNDIST):
        runs.append(
            run_method(
                f"RBA {metric}",
                lambda m=metric: mba_join(rstar, rstar, metric=m, exclude_self=True),
                storage_r,
            )
        )
    for metric in (PruningMetric.MAXMAXDIST, PruningMetric.NXNDIST):
        runs.append(
            run_method(
                f"MBA {metric}",
                lambda m=metric: mba_join(mbrqt, mbrqt, metric=m, exclude_self=True),
                storage_q,
            )
        )

    storage_g = cfg.storage()
    runs.append(
        run_method(
            "GORDER",
            lambda: gorder_join(
                pts, pts, storage_g, exclude_self=True, points_per_block=cfg.gorder_block
            ),
            storage_g,
        )
    )

    # Cross-validate: every method must agree on the answer's checksum.
    return runs


# ---------------------------------------------------------------------------
# Figure 3(b): FC 10-D — MBA vs GORDER across buffer pool sizes
# ---------------------------------------------------------------------------


def fig3b_bufferpool(cfg: BenchConfig | None = None) -> list[MethodRun]:
    """MBA vs GORDER on the FC surrogate for pools of 512KB..8MB."""
    cfg = cfg or BenchConfig.from_env()
    pts = fc_surrogate(cfg.fc_n, seed=cfg.seed)
    pools = [512 * KB, 1 * MB, 4 * MB, 8 * MB]
    runs: list[MethodRun] = []
    for pool in pools:
        storage_q = cfg.storage(pool, cfg.page_size_10d)
        mbrqt = build_index(pts, storage_q, kind="mbrqt")
        runs.append(
            run_method(
                "MBA",
                lambda i=mbrqt: mba_join(i, i, exclude_self=True),
                storage_q,
                dims=10,
                pool_kb=pool // KB,
            )
        )
        storage_g = cfg.storage(pool, cfg.page_size_10d)
        runs.append(
            run_method(
                "GORDER",
                lambda s=storage_g: gorder_join(
                    pts, pts, s, exclude_self=True, points_per_block=cfg.gorder_block
                ),
                storage_g,
                dims=10,
                pool_kb=pool // KB,
            )
        )
    return runs


# ---------------------------------------------------------------------------
# Figure 4: dimensionality sweep on GSTD synthetic data
# ---------------------------------------------------------------------------


def fig4_dimensionality(cfg: BenchConfig | None = None) -> list[MethodRun]:
    """MBA vs GORDER on the 500K{2,4,6}D surrogates (scaled)."""
    cfg = cfg or BenchConfig.from_env()
    runs: list[MethodRun] = []
    for dims in (2, 4, 6):
        pts = gstd.gaussian_clusters(cfg.syn_n, dims, seed=cfg.seed + dims, n_clusters=25)
        storage_q = cfg.storage()
        mbrqt = build_index(pts, storage_q, kind="mbrqt")
        runs.append(
            run_method(
                "MBA",
                lambda i=mbrqt: mba_join(i, i, exclude_self=True),
                storage_q,
                dims=dims,
                D=dims,
            )
        )
        storage_g = cfg.storage()
        runs.append(
            run_method(
                "GORDER",
                lambda s=storage_g, p=pts: gorder_join(
                    p, p, s, exclude_self=True, points_per_block=cfg.gorder_block
                ),
                storage_g,
                dims=dims,
                D=dims,
            )
        )
    return runs


# ---------------------------------------------------------------------------
# Figures 5 and 6: AkNN, k = 10..50
# ---------------------------------------------------------------------------


def _aknn_sweep(pts: np.ndarray, cfg: BenchConfig) -> list[MethodRun]:
    dims = pts.shape[1]
    page_size = cfg.page_size_10d if dims >= 8 else None
    storage_q = cfg.storage(page_size=page_size)
    mbrqt = build_index(pts, storage_q, kind="mbrqt")
    runs: list[MethodRun] = []
    for k in cfg.aknn_ks:
        runs.append(
            run_method(
                "MBA",
                lambda kk=k: mba_join(mbrqt, mbrqt, k=kk, exclude_self=True),
                storage_q,
                dims=dims,
                k=k,
            )
        )
        storage_g = cfg.storage(page_size=page_size)
        runs.append(
            run_method(
                "GORDER",
                lambda kk=k, s=storage_g: gorder_join(
                    pts, pts, s, k=kk, exclude_self=True, points_per_block=cfg.gorder_block
                ),
                storage_g,
                dims=dims,
                k=k,
            )
        )
    return runs


def fig5_aknn_tac(cfg: BenchConfig | None = None) -> list[MethodRun]:
    """AkNN on the TAC surrogate, k in 10..50 (Figure 5)."""
    cfg = cfg or BenchConfig.from_env()
    return _aknn_sweep(tac_surrogate(cfg.aknn_tac_n, seed=cfg.seed), cfg)


def fig6_aknn_fc(cfg: BenchConfig | None = None) -> list[MethodRun]:
    """AkNN on the FC surrogate, k in 10..50 (Figure 6)."""
    cfg = cfg or BenchConfig.from_env()
    return _aknn_sweep(fc_surrogate(cfg.aknn_fc_n, seed=cfg.seed), cfg)


# ---------------------------------------------------------------------------
# Ablations for the design choices called out in Sections 3.3.2 / 3.3.3
# ---------------------------------------------------------------------------


def ablation_traversal_variants(cfg: BenchConfig | None = None) -> list[MethodRun]:
    """The four traversal variants of Section 3.3.2 (DF/BF x bi/uni)."""
    cfg = cfg or BenchConfig.from_env()
    pts = gstd.gaussian_clusters(cfg.syn_n, 2, seed=cfg.seed, n_clusters=25)
    storage = cfg.storage()
    mbrqt = build_index(pts, storage, kind="mbrqt")
    runs = []
    for depth_first in (True, False):
        for bidirectional in (True, False):
            label = f"{'DF' if depth_first else 'BF'}-{'BI' if bidirectional else 'UNI'}"
            runs.append(
                run_method(
                    label,
                    lambda df=depth_first, bi=bidirectional: mba_join(
                        mbrqt, mbrqt, exclude_self=True, depth_first=df, bidirectional=bi
                    ),
                    storage,
                )
            )
    return runs


def ablation_filter_stage(cfg: BenchConfig | None = None) -> list[MethodRun]:
    """Three-stage pruning with and without the Filter Stage (3.3.3).

    Run with ``batch_tighten=False`` so entries enqueue against the
    pre-batch bound, exactly the situation Section 3.3.3 describes ("the
    MAXD of a new incoming entry may become smaller than the MIND of some
    entries already on the queue"); the Filter Stage is then what retires
    the stale entries.  (The library's default batch tightening filters
    most of them before they ever enqueue, which would mask the effect.)
    """
    cfg = cfg or BenchConfig.from_env()
    pts = tac_surrogate(cfg.aknn_tac_n, seed=cfg.seed)
    storage = cfg.storage()
    mbrqt = build_index(pts, storage, kind="mbrqt")
    runs = []
    for enabled in (True, False):
        runs.append(
            run_method(
                f"filter={'on' if enabled else 'off'}",
                lambda e=enabled: mba_join(
                    mbrqt,
                    mbrqt,
                    k=10,
                    exclude_self=True,
                    filter_stage=e,
                    batch_tighten=False,
                ),
                storage,
            )
        )
    return runs


def ablation_count_bound(cfg: BenchConfig | None = None) -> list[MethodRun]:
    """Extension beyond the paper: the count-aware AkNN bound.

    Under MAXMAXDIST an entry's full subtree count may feed the k-bound
    (every point is within the bound); the paper's rule counts entries.
    This ablation quantifies what the stored subtree counts buy.
    """
    cfg = cfg or BenchConfig.from_env()
    pts = tac_surrogate(cfg.aknn_tac_n, seed=cfg.seed)
    storage = cfg.storage()
    mbrqt = build_index(pts, storage, kind="mbrqt")
    runs = []
    for metric in (PruningMetric.NXNDIST, PruningMetric.MAXMAXDIST):
        runs.append(
            run_method(
                f"AkNN {metric}",
                lambda m=metric: mba_join(mbrqt, mbrqt, k=20, exclude_self=True, metric=m),
                storage,
            )
        )
    return runs
