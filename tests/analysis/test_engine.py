"""Tests for the lint engine: suppressions, registry, diagnostics.

All fixture programs live in plain strings fed to ``lint_source`` so the
rules they deliberately violate never fire on this test file itself.
"""

import textwrap

from repro.analysis.engine import (
    Diagnostic,
    Rule,
    RuleRegistry,
    Severity,
    default_registry,
    lint_paths,
    lint_source,
)


def _lint(code: str, **kwargs) -> list[Diagnostic]:
    return lint_source(textwrap.dedent(code), path="fixture.py", **kwargs)


UNSEEDED = """
    import numpy as np
    x = np.random.random(10)
"""


class TestSuppressions:
    def test_same_line_suppression(self):
        code = """
            import numpy as np
            x = np.random.random(10)  # repro-lint: ignore[nondeterminism]
        """
        assert _lint(code) == []

    def test_line_above_suppression(self):
        code = """
            import numpy as np
            # repro-lint: ignore[nondeterminism]
            x = np.random.random(10)
        """
        assert _lint(code) == []

    def test_bare_ignore_suppresses_every_rule(self):
        code = """
            import numpy as np
            x = np.random.random(10)  # repro-lint: ignore
        """
        assert _lint(code) == []

    def test_multi_rule_suppression(self):
        code = """
            import numpy as np

            def f(xs=[]):  # repro-lint: ignore[mutable-default-arg, nondeterminism]
                y = 1
                return y + np.random.random(10)
        """
        findings = _lint(code)
        # The comment reaches its own line and the next one only, so the
        # default-arg finding is gone but the call two lines down survives.
        assert [d.rule for d in findings] == ["nondeterminism"]

    def test_wrong_rule_name_does_not_suppress(self):
        code = """
            import numpy as np
            x = np.random.random(10)  # repro-lint: ignore[bare-except]
        """
        # The finding survives, and the pointless suppression is itself
        # flagged as stale.
        assert [d.rule for d in _lint(code)] == ["unused-suppression", "nondeterminism"]

    def test_suppression_inside_string_is_inert(self):
        code = '''
            import numpy as np
            note = "# repro-lint: ignore[nondeterminism]"
            x = np.random.random(10)
        '''
        assert [d.rule for d in _lint(code)] == ["nondeterminism"]

    def test_unsuppressed_fixture_fires(self):
        assert [d.rule for d in _lint(UNSEEDED)] == ["nondeterminism"]

    def test_disable_form_suppresses(self):
        code = """
            import numpy as np
            x = np.random.random(10)  # repro-lint: disable=nondeterminism
        """
        assert _lint(code) == []

    def test_disable_form_multi_rule(self):
        code = """
            import numpy as np

            def f(xs=[]):  # repro-lint: disable=mutable-default-arg,nondeterminism
                return xs + [np.random.random(10)]
        """
        assert _lint(code) == []

    def test_bare_disable_suppresses_every_rule(self):
        code = """
            import numpy as np
            x = np.random.random(10)  # repro-lint: disable
        """
        assert _lint(code) == []


class TestUnusedSuppressions:
    def test_stale_suppression_is_flagged(self):
        code = """
            x = 1  # repro-lint: ignore[nondeterminism]
        """
        findings = _lint(code)
        assert [d.rule for d in findings] == ["unused-suppression"]
        assert "nondeterminism" in findings[0].message

    def test_stale_bare_suppression_is_flagged(self):
        code = """
            x = 1  # repro-lint: ignore
        """
        findings = _lint(code)
        assert [d.rule for d in findings] == ["unused-suppression"]
        assert "bare" in findings[0].message

    def test_used_suppression_is_not_flagged(self):
        code = """
            import numpy as np
            x = np.random.random(10)  # repro-lint: ignore[nondeterminism]
        """
        assert _lint(code) == []

    def test_unknown_rule_name_left_for_other_tool(self):
        # PREFIX-NNN ids belong to the cross-module analyzer; the lint
        # engine neither honours nor polices them.
        code = """
            x = 1  # repro-lint: disable=RACE-001
        """
        assert _lint(code) == []

    def test_self_silencing(self):
        code = """
            x = 1  # repro-lint: ignore[nondeterminism, unused-suppression]
        """
        assert _lint(code) == []

    def test_not_reported_under_select(self):
        code = """
            x = 1  # repro-lint: ignore[nondeterminism]
        """
        assert _lint(code, select=["bare-except"]) == []


class TestRegistry:
    def test_default_registry_has_the_catalogue(self):
        names = set(default_registry().rules)
        assert {
            "sqrt-discipline",
            "counter-discipline",
            "buffer-pool-bypass",
            "nondeterminism",
            "mutable-default-arg",
            "bare-except",
            "nxndist-arg-order",
        } <= names

    def test_register_rejects_duplicates(self):
        class Dummy(Rule):
            name = "dummy"

        registry = RuleRegistry()
        registry.register(Dummy())
        try:
            registry.register(Dummy())
        except ValueError as exc:
            assert "duplicate" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_register_rejects_unnamed(self):
        registry = RuleRegistry()
        try:
            registry.register(Rule())
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_select_unknown_rule_raises(self):
        try:
            default_registry().select(["no-such-rule"])
        except KeyError as exc:
            assert "no-such-rule" in str(exc)
        else:
            raise AssertionError("expected KeyError")

    def test_select_filters_rules(self):
        findings = _lint(UNSEEDED, select=["bare-except"])
        assert findings == []
        findings = _lint(UNSEEDED, select=["nondeterminism"])
        assert [d.rule for d in findings] == ["nondeterminism"]


class TestDiagnostics:
    def test_format_shape(self):
        diag = Diagnostic("pkg/mod.py", 12, 4, "some-rule", "msg", Severity.ERROR)
        assert diag.format() == "pkg/mod.py:12:4: error [some-rule] msg"

    def test_findings_are_sorted(self):
        code = """
            import numpy as np

            def f(xs=[]):
                try:
                    return np.random.random(10)
                except:
                    return xs
        """
        findings = _lint(code)
        assert findings == sorted(findings, key=lambda d: d.sort_key)
        assert [d.line for d in findings] == sorted(d.line for d in findings)
        assert {d.rule for d in findings} == {
            "mutable-default-arg",
            "nondeterminism",
            "bare-except",
        }

    def test_syntax_error_becomes_diagnostic(self):
        findings = _lint("def f(:\n")
        assert len(findings) == 1
        assert findings[0].rule == "syntax-error"


class TestAliasResolution:
    def test_import_as_alias_is_resolved(self):
        code = """
            import numpy.random as nr
            x = nr.random(10)
        """
        assert [d.rule for d in _lint(code)] == ["nondeterminism"]

    def test_from_import_alias_is_resolved(self):
        code = """
            from numpy.random import random as draw
            x = draw(10)
        """
        # 'from numpy.random import random' resolves to numpy.random.random.
        assert [d.rule for d in _lint(code)] == ["nondeterminism"]

    def test_unrelated_name_not_confused(self):
        code = """
            class MyThing:
                def random(self):
                    return 4

            x = MyThing().random()
        """
        assert _lint(code) == []


class TestLintPaths:
    def test_directory_walk_and_dotdir_skip(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("import numpy as np\nx = np.random.rand(3)\n")
        hidden = tmp_path / ".hidden"
        hidden.mkdir()
        (hidden / "skipped.py").write_text("import numpy as np\nnp.random.rand(3)\n")
        findings = lint_paths([tmp_path])
        assert [d.rule for d in findings] == ["nondeterminism"]
        assert findings[0].path.endswith("bad.py")
