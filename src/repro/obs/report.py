"""Render a ``repro.trace`` artifact as attribution tables.

``python -m repro trace-report t.json`` answers the two questions the
paper's evaluation sections keep asking of every method:

* **Where did the time and work go, per pruning stage?**  The engine
  accumulates Expand/Gather windows (and the lazily-applied Filter
  Stage's discard counters) into span stage aggregates; the report sums
  them over the whole span tree — including grafted per-worker shard
  spans — into one Expand/Filter/Gather table.
* **Which storage layer served the reads?**  The document's ``totals``
  carry the authoritative end-of-run counters (for sharded runs these
  include worker-side I/O the coordinator never saw), broken out here
  into the decoded-node cache, the buffer pool, and the simulated disk.

Everything here is a pure function of the (validated) document, so the
report can be regenerated from an archived CI artifact long after the
run that produced it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .schema import validate_trace

__all__ = ["load_trace", "format_trace_report", "aggregate_stages"]

#: Canonical stage order for the attribution table (Algorithm 4's
#: Expand/Filter/Gather); stages outside this list print after, sorted.
_STAGE_ORDER = ("expand", "filter", "gather")

#: Stage-table counter columns: header -> counter key inside stage deltas.
_STAGE_COLUMNS = (
    ("distances", "stats.distance_evaluations"),
    ("expansions", "stats.node_expansions"),
    ("enqueues", "stats.lpq_enqueues"),
    ("pruned", "stats.pruned_entries"),
    ("discards", "stats.lpq_filter_discards"),
)


def load_trace(path: str | Path) -> dict[str, Any]:
    """Read and schema-validate a trace artifact."""
    doc = json.loads(Path(path).read_text())
    return validate_trace(doc)


def aggregate_stages(span: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """Sum stage aggregates over ``span`` and its whole subtree.

    Worker shard spans are ordinary children, so a sharded run's stages
    fold into the same totals as a serial run's.
    """
    out: dict[str, dict[str, Any]] = {}
    stack = [span]
    while stack:
        node = stack.pop()
        for name, agg in node["stages"].items():
            entry = out.setdefault(name, {"calls": 0, "time_s": 0.0, "counters": {}})
            entry["calls"] += agg["calls"]
            entry["time_s"] += agg["time_s"]
            counters = entry["counters"]
            for key, value in agg["counters"].items():
                counters[key] = counters.get(key, 0.0) + value
        stack.extend(node["children"])
    return out


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:.3f}"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return lines


def _span_tree_lines(span: dict[str, Any], depth: int, out: list[str]) -> None:
    attrs = span["attrs"]
    attr_text = (
        " (" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + ")" if attrs else ""
    )
    out.append(f"{'  ' * depth}{span['name']:<18s} {span['duration_s']:>9.3f}s{attr_text}")
    for child in span["children"]:
        _span_tree_lines(child, depth + 1, out)


def _stage_section(doc: dict[str, Any]) -> list[str]:
    stages = aggregate_stages(doc["root"])
    totals = doc["totals"]
    names = [s for s in _STAGE_ORDER if s in stages]
    names += sorted(set(stages) - set(_STAGE_ORDER))
    total_time = sum(stages[name]["time_s"] for name in names)

    headers = ["stage", "calls", "time_s", "time%"] + [h for h, _ in _STAGE_COLUMNS]
    rows: list[list[str]] = []
    for name in names:
        agg = stages[name]
        share = 100.0 * agg["time_s"] / total_time if total_time > 0 else 0.0
        row = [name, _fmt_num(agg["calls"]), f"{agg['time_s']:.3f}", f"{share:.1f}"]
        row += [_fmt_num(agg["counters"].get(key, 0.0)) for _, key in _STAGE_COLUMNS]
        rows.append(row)

    # The Filter Stage is applied lazily inside Expand/Gather pops
    # (Section 3.3.3), so it has no timed windows of its own; its work is
    # the discard counter, reported from the authoritative totals when
    # the producer supplied them.
    if "filter" not in stages:
        discards = totals.get("lpq_filter_discards")
        if discards is None:
            discards = sum(
                stages[name]["counters"].get("stats.lpq_filter_discards", 0.0)
                for name in names
            )
        row = ["filter", "(lazy)", "-", "-"]
        row += ["-" for _ in _STAGE_COLUMNS[:-1]] + [_fmt_num(discards)]
        rows.append(row)
        order = {"expand": 0, "filter": 1, "gather": 2}
        rows.sort(key=lambda r: order.get(r[0], len(order)))

    lines = ["Stage attribution (Expand / Filter / Gather):"]
    if rows:
        lines += _table(headers, rows)
        lines.append("(filter runs lazily inside expand/gather pops; its cost is the discards)")
    else:
        lines.append("(no stage data in this trace)")
    return lines


def _layer_section(doc: dict[str, Any]) -> list[str]:
    totals = doc["totals"]
    if not totals:
        return [
            "Layer attribution:",
            "(no totals in this trace — produced without an end-of-run counter bundle)",
        ]
    cache_hits = totals.get("node_cache_hits", 0.0)
    cache_misses = totals.get("node_cache_misses", 0.0)
    logical = totals.get("logical_reads", 0.0)
    misses = totals.get("page_misses", 0.0)
    io_time = totals.get("io_time_s", 0.0)

    def rate(hits: float, requests: float) -> str:
        return f"{100.0 * hits / requests:.1f}" if requests > 0 else "-"

    headers = ["layer", "requests", "hits", "misses", "hit%", "time_s"]
    rows = [
        [
            "node-cache",
            _fmt_num(cache_hits + cache_misses),
            _fmt_num(cache_hits),
            _fmt_num(cache_misses),
            rate(cache_hits, cache_hits + cache_misses),
            "-",
        ],
        [
            "pool",
            _fmt_num(logical),
            _fmt_num(logical - misses),
            _fmt_num(misses),
            rate(logical - misses, logical),
            "-",
        ],
        ["disk", _fmt_num(misses), "-", "-", "-", f"{io_time:.3f}"],
    ]
    lines = ["Layer attribution (decoded-node cache / buffer pool / disk):"]
    lines += _table(headers, rows)
    lines.append("(disk requests = pool misses; time_s is the simulated I/O clock)")
    return lines


def _service_section(doc: dict[str, Any]) -> list[str]:
    service = doc["service"]
    lines = ["Service counters (online run):"]
    if not service:
        lines.append("(empty service section)")
        return lines
    headers = ["counter", "value"]
    rows = [[name, _fmt_num(value)] for name, value in sorted(service.items())]
    lines += _table(headers, rows)
    submitted = service.get("submitted", 0.0)
    rejected = service.get("rejected", 0.0)
    degraded = service.get("degraded", 0.0)
    if submitted > 0:
        lines.append(
            f"(rejected {100.0 * rejected / (submitted + rejected):.1f}% at admission, "
            f"degraded {100.0 * degraded / submitted:.1f}% of admitted)"
        )
    return lines


def _replica_section(doc: dict[str, Any]) -> list[str]:
    replicas = doc["replica"]
    lines = ["Replica counters (multi-process serve):"]
    if not replicas:
        lines.append("(empty replica section)")
        return lines
    names = sorted(replicas)
    counter_names = sorted({key for counters in replicas.values() for key in counters})
    headers = ["counter"] + names
    rows = [
        [counter]
        + [
            _fmt_num(replicas[name][counter]) if counter in replicas[name] else "-"
            for name in names
        ]
        for counter in counter_names
    ]
    lines += _table(headers, rows)
    return lines


def format_trace_report(doc: dict[str, Any]) -> str:
    """The full text report for one (already validated) trace document."""
    meta = doc["meta"]
    lines = [f"Trace report — {doc['schema']} v{doc['version']}"]
    if meta:
        lines.append("meta: " + "  ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    lines.append("")
    lines.append("Spans:")
    _span_tree_lines(doc["root"], 1, lines)
    lines.append("")
    lines += _stage_section(doc)
    lines.append("")
    lines += _layer_section(doc)
    if "service" in doc:
        lines.append("")
        lines += _service_section(doc)
    if "replica" in doc:
        lines.append("")
        lines += _replica_section(doc)
    return "\n".join(lines)
