"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.method == "mba"
        assert args.k == 1
        assert args.metric == "nxndist"

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--method", "quantum"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "TAC" in out and "FC" in out and "500K6D" in out

    @pytest.mark.parametrize("method", ["mba", "rba", "bnn", "mnn", "gorder", "hnn"])
    def test_join_all_methods(self, capsys, method):
        assert main(["join", "--method", method, "--dataset", "uniform", "-n", "300"]) == 0
        out = capsys.readouterr().out
        assert "result pairs     : 300" in out

    def test_join_with_k_and_metric(self, capsys):
        code = main(
            ["join", "--method", "mba", "--dataset", "gaussian",
             "-n", "200", "-k", "3", "--metric", "maxmaxdist"]
        )
        assert code == 0
        assert "result pairs     : 600" in capsys.readouterr().out

    def test_join_unknown_dataset(self):
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["join", "--dataset", "mars", "-n", "10"])

    def test_experiment_unknown(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiment", "fig99"])

    def test_join_with_workers(self, capsys):
        serial = ["join", "--method", "mba", "--dataset", "gaussian", "-n", "300"]
        assert main(serial) == 0
        first = capsys.readouterr().out
        assert main(serial + ["--workers", "2"]) == 0
        second = capsys.readouterr().out
        assert "workers          : 2" in second
        checksum = [l for l in first.splitlines() if "checksum" in l]
        assert checksum == [l for l in second.splitlines() if "checksum" in l]

    def test_workers_rejected_for_non_sharded_methods(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["join", "--method", "bnn", "-n", "100", "--workers", "2"])

    def test_workers_zero_rejected(self):
        with pytest.raises(SystemExit, match=">= 1"):
            main(["join", "--method", "mba", "-n", "100", "--workers", "0"])

    def test_parallel_bench_writes_artifact(self, capsys, tmp_path):
        out = tmp_path / "BENCH_parallel.json"
        code = main(
            ["parallel-bench", "--workers", "1", "2", "-n", "500", "--out", str(out)]
        )
        assert code == 0
        assert "speedup" in capsys.readouterr().out
        assert out.exists()

    def test_parallel_bench_rejects_non_gstd_dataset(self):
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["parallel-bench", "--dataset", "tac", "-n", "100", "--out", "-"])

    def test_join_node_cache_preserves_checksum(self, capsys):
        base = ["join", "--method", "mba", "--dataset", "uniform", "-n", "300"]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base + ["--node-cache", "128"]) == 0
        second = capsys.readouterr().out
        checksum = [l for l in first.splitlines() if "checksum" in l]
        assert checksum == [l for l in second.splitlines() if "checksum" in l]

    def test_join_node_cache_negative_rejected(self):
        with pytest.raises(SystemExit, match=">= 0"):
            main(["join", "--method", "mba", "-n", "100", "--node-cache", "-1"])

    def test_kernel_bench_smoke_writes_artifact(self, capsys, tmp_path):
        out = tmp_path / "BENCH_core.json"
        assert main(["kernel-bench", "--smoke", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "End-to-end mba_join" in printed
        assert out.exists()

    def test_kernel_bench_dash_out_skips_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["kernel-bench", "--smoke", "--out", "-"]) == 0
        assert "LPQ push/pop" in capsys.readouterr().out
        assert not (tmp_path / "BENCH_core.json").exists()

    def test_join_checksum_deterministic(self, capsys):
        main(["join", "--method", "mba", "--dataset", "uniform", "-n", "200"])
        first = capsys.readouterr().out
        main(["join", "--method", "mba", "--dataset", "uniform", "-n", "200"])
        second = capsys.readouterr().out
        checksum = [l for l in first.splitlines() if "checksum" in l]
        assert checksum == [l for l in second.splitlines() if "checksum" in l]


class TestTracing:
    def test_traced_join_writes_valid_artifact(self, capsys, tmp_path):
        from repro import load_trace

        path = tmp_path / "t.json"
        base = ["join", "--method", "mba", "--dataset", "uniform", "-n", "300"]
        assert main(base) == 0
        untraced = capsys.readouterr().out
        assert main(base + ["--trace", str(path)]) == 0
        traced = capsys.readouterr().out
        # Tracing must not change the answer the CLI prints.
        checksum = [l for l in untraced.splitlines() if "checksum" in l]
        assert checksum == [l for l in traced.splitlines() if "checksum" in l]
        assert f"wrote {path}" in traced
        doc = load_trace(path)  # schema-validates
        assert doc["meta"]["command"] == "join"
        assert doc["meta"]["method"] == "mba"
        assert doc["totals"]["result_pairs"] == 300.0

    def test_trace_report_renders_artifact(self, capsys, tmp_path):
        path = tmp_path / "t.json"
        assert main(["join", "--method", "mba", "-n", "300", "--trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Stage attribution" in out
        assert "Layer attribution" in out
        assert "expand" in out and "gather" in out and "filter" in out

    def test_trace_report_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="trace"):
            main(["trace-report", str(tmp_path / "nope.json")])

    def test_trace_report_invalid_artifact(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro.trace"}')
        with pytest.raises(SystemExit, match="missing keys"):
            main(["trace-report", str(bad)])

    def test_traced_sharded_join(self, tmp_path):
        from repro import load_trace

        path = tmp_path / "t.json"
        args = ["join", "--method", "mba", "-n", "600", "--workers", "2",
                "--trace", str(path)]
        assert main(args) == 0
        doc = load_trace(path)
        query = next(c for c in doc["root"]["children"] if c["name"] == "query")
        assert any(c["name"] == "shard" for c in query["children"])

    def test_traced_kernel_bench(self, capsys, tmp_path):
        path = tmp_path / "t.json"
        args = ["kernel-bench", "--smoke", "--out", "-", "--trace", str(path)]
        assert main(args) == 0
        assert path.exists()

    def test_traced_experiment(self, capsys, tmp_path, monkeypatch):
        from repro import load_trace

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        path = tmp_path / "t.json"
        assert main(["experiment", "filter", "--trace", str(path)]) == 0
        doc = load_trace(path)
        assert doc["meta"]["command"] == "experiment"
        # Each measured method run became a span via the ambient tracer.
        assert any(c["name"] == "method" for c in doc["root"]["children"])


class TestServe:
    def test_once_round_trip(self, capsys):
        assert main(["serve", "--once", "-n", "300"]) == 0
        out = capsys.readouterr().out
        assert "round-trip       : OK" in out
        assert "1 exact, 0 degraded" in out

    def test_batched_self_queries(self, capsys):
        args = ["serve", "-n", "300", "--requests", "24", "--max-batch", "8",
                "--max-delay-ms", "1"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "answered         : 24 (24 exact, 0 degraded)" in out

    def test_serve_writes_trace(self, tmp_path, capsys):
        from repro import load_trace

        path = tmp_path / "service.json"
        args = ["serve", "--once", "-n", "300", "--trace", str(path)]
        assert main(args) == 0
        doc = load_trace(path)
        assert doc["meta"]["api"] == "AnnService"
        assert doc["service"]["answered"] == 1.0

    def test_invalid_service_config_exits(self):
        with pytest.raises(SystemExit, match="max_batch"):
            main(["serve", "--once", "-n", "100", "--max-batch", "0"])

    def test_invalid_request_count_exits(self):
        with pytest.raises(SystemExit, match="--requests"):
            main(["serve", "-n", "100", "--requests", "0"])


class TestServeReplicas:
    def test_once_round_trip_multiprocess(self, capsys):
        # The CI multi-process smoke: two spawned replica processes
        # behind the asyncio front-end, one probed self-query.
        args = ["serve", "--replicas", "2", "--once", "-n", "300"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 replica processes" in out
        assert "round-trip       : OK" in out

    def test_replica_serve_writes_trace(self, tmp_path, capsys):
        from repro import load_trace

        path = tmp_path / "serve.json"
        args = ["serve", "--replicas", "2", "--requests", "8", "-n", "300",
                "--trace", str(path)]
        assert main(args) == 0
        doc = load_trace(path)
        assert doc["meta"]["component"] == "repro.serve"
        assert doc["service"]["answered"] == 8.0
        assert len(doc["replica"]) == 2

    def test_replicas_reject_workers(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", "--replicas", "2", "--workers", "2", "--once",
                  "-n", "100"])

    def test_replicas_reject_frontier_flush(self):
        with pytest.raises(SystemExit, match="--frontier-flush"):
            main(["serve", "--replicas", "2", "--frontier-flush", "--once",
                  "-n", "100"])

    def test_cache_slots_require_replicas(self):
        with pytest.raises(SystemExit, match="--cache-slots"):
            main(["serve", "--cache-slots", "16", "--once", "-n", "100"])

    def test_zero_replicas_rejected(self):
        with pytest.raises(SystemExit, match="--replicas"):
            main(["serve", "--replicas", "0", "--once", "-n", "100"])


class TestServiceBench:
    def test_sweep_prints_report(self, capsys):
        args = ["service-bench", "--windows", "1", "4", "--clients", "4",
                "-n", "200", "--requests", "12", "--out", "-"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Service micro-batching" in out
        assert "tput_x" in out

    def test_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_service.json"
        args = ["service-bench", "--windows", "1", "4", "--clients", "4",
                "-n", "200", "--requests", "12", "--out", str(out_path)]
        assert main(args) == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.bench.service/v1"
        assert f"wrote {out_path}" in capsys.readouterr().out

    def test_bad_windows_exit(self):
        with pytest.raises(SystemExit, match="baseline"):
            main(["service-bench", "--windows", "4", "8", "--clients", "8",
                  "-n", "100", "--requests", "8", "--out", "-"])

    def test_processes_sweep_adds_multiprocess_section(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_service.json"
        args = ["service-bench", "--windows", "1", "4", "--clients", "8",
                "-n", "200", "--requests", "24", "--processes", "1", "2",
                "--out", str(out_path)]
        assert main(args) == 0
        doc = json.loads(out_path.read_text())
        assert [r["replicas"] for r in doc["multiprocess"]["runs"]] == [1, 2]
        assert "Multi-process serving" in capsys.readouterr().out

    def test_bad_processes_exit(self):
        with pytest.raises(SystemExit, match="baseline"):
            main(["service-bench", "--windows", "1", "--clients", "8",
                  "-n", "100", "--requests", "8", "--processes", "2",
                  "--out", "-"])


class TestUpdateBench:
    _TINY = ["-n", "100", "--rounds", "2", "--updates", "6", "--queries", "3",
             "--compact-threshold", "6"]

    def test_stream_prints_report(self, capsys):
        args = ["update-bench", "--kinds", "mbrqt", *self._TINY, "--out", "-"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "sustained updates" in out
        assert "epochs" in out and "compactions" in out

    def test_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_updates.json"
        args = ["update-bench", "--kinds", "mbrqt", *self._TINY,
                "--out", str(out_path)]
        assert main(args) == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.bench.updates/v1"
        assert f"wrote {out_path}" in capsys.readouterr().out

    def test_invalid_compact_threshold_exits(self):
        with pytest.raises(SystemExit, match="compact_threshold"):
            main(["update-bench", "--kinds", "mbrqt", "-n", "50",
                  "--compact-threshold", "0", "--out", "-"])
