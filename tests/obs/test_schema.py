"""Tests for the trace schema and its hand-rolled validator.

The validator and :data:`TRACE_SCHEMA` declare the same contract twice;
these tests keep them in lockstep by exercising each constraint the
schema states against the validator.
"""

import copy

import pytest

from repro.obs import TRACE_SCHEMA, Tracer, TraceValidationError, validate_trace


def make_doc():
    """A small, valid document with one span, stage and child."""
    tracer = Tracer()
    counters = {"reads": 0.0}
    with tracer.source("io", lambda: counters):
        with tracer.span("query", k=1, label="x", flag=True, none=None):
            counters["reads"] += 3.0
            with tracer.stage("expand"):
                counters["reads"] += 1.0
            with tracer.span("child"):
                pass
    return tracer.finish(meta={"method": "mba", "n": 100}, totals={"reads": 4.0})


class TestValidDocuments:
    def test_produced_document_validates(self):
        doc = make_doc()
        assert validate_trace(doc) is doc

    def test_empty_meta_and_totals(self):
        doc = Tracer().finish()
        assert validate_trace(doc)["meta"] == {}

    def test_round_trips_through_json(self, tmp_path):
        import json

        doc = make_doc()
        path = tmp_path / "t.json"
        path.write_text(json.dumps(doc))
        validate_trace(json.loads(path.read_text()))


class TestRejections:
    def test_non_mapping(self):
        with pytest.raises(TraceValidationError, match=r"\$: expected object"):
            validate_trace([1, 2])

    def test_missing_top_level_key(self):
        doc = make_doc()
        del doc["totals"]
        with pytest.raises(TraceValidationError, match="missing keys.*totals"):
            validate_trace(doc)

    def test_extra_top_level_key(self):
        doc = make_doc()
        doc["extra"] = 1
        with pytest.raises(TraceValidationError, match="unexpected keys.*extra"):
            validate_trace(doc)

    def test_wrong_schema_name(self):
        doc = make_doc()
        doc["schema"] = "other.trace"
        with pytest.raises(TraceValidationError, match=r"\$\.schema"):
            validate_trace(doc)

    def test_wrong_version(self):
        doc = make_doc()
        doc["version"] = 99
        with pytest.raises(TraceValidationError, match=r"\$\.version"):
            validate_trace(doc)

    def test_non_scalar_meta_value(self):
        doc = make_doc()
        doc["meta"]["nested"] = {"a": 1}
        with pytest.raises(TraceValidationError, match=r"\$\.meta\.nested"):
            validate_trace(doc)

    def test_non_numeric_total(self):
        doc = make_doc()
        doc["totals"]["reads"] = "many"
        with pytest.raises(TraceValidationError, match=r"\$\.totals\.reads"):
            validate_trace(doc)

    def test_boolean_is_not_a_number(self):
        # bool subclasses int; a counter of `true` is a producer bug.
        doc = make_doc()
        doc["totals"]["reads"] = True
        with pytest.raises(TraceValidationError, match="expected number, got bool"):
            validate_trace(doc)

    def test_span_missing_key(self):
        doc = make_doc()
        del doc["root"]["children"][0]["stages"]
        with pytest.raises(TraceValidationError, match=r"children\[0\].*missing"):
            validate_trace(doc)

    def test_span_extra_key(self):
        doc = make_doc()
        doc["root"]["extra"] = 1
        with pytest.raises(TraceValidationError, match=r"\$\.root.*unexpected"):
            validate_trace(doc)

    def test_empty_span_name(self):
        doc = make_doc()
        doc["root"]["children"][0]["name"] = ""
        with pytest.raises(TraceValidationError, match="non-empty string"):
            validate_trace(doc)

    def test_negative_duration(self):
        doc = make_doc()
        doc["root"]["duration_s"] = -1.0
        with pytest.raises(TraceValidationError, match=">= 0"):
            validate_trace(doc)

    def test_children_must_be_array(self):
        doc = make_doc()
        doc["root"]["children"] = {"oops": 1}
        with pytest.raises(TraceValidationError, match="expected array"):
            validate_trace(doc)

    def test_stage_calls_must_be_integer(self):
        doc = make_doc()
        doc["root"]["children"][0]["stages"]["expand"]["calls"] = 1.5
        with pytest.raises(TraceValidationError, match=r"stages\.expand\.calls"):
            validate_trace(doc)

    def test_stage_extra_key(self):
        doc = make_doc()
        doc["root"]["children"][0]["stages"]["expand"]["note"] = "hi"
        with pytest.raises(TraceValidationError, match="unexpected keys.*note"):
            validate_trace(doc)

    def test_error_path_names_deep_node(self):
        doc = make_doc()
        doc["root"]["children"][0]["children"][0]["counters"]["bad"] = []
        with pytest.raises(TraceValidationError) as exc:
            validate_trace(doc)
        assert exc.value.path == "$.root.children[0].children[0].counters.bad"


class TestSchemaDocument:
    """The published JSON-Schema must describe what the validator enforces."""

    def test_declares_draft07(self):
        assert TRACE_SCHEMA["$schema"] == "http://json-schema.org/draft-07/schema#"

    def test_top_level_required_matches_validator(self):
        assert set(TRACE_SCHEMA["required"]) == {
            "schema", "version", "meta", "totals", "root"
        }
        assert TRACE_SCHEMA["additionalProperties"] is False

    def test_span_definition_matches_validator(self):
        span = TRACE_SCHEMA["definitions"]["span"]
        assert set(span["required"]) == {
            "name", "start_s", "duration_s", "attrs", "counters", "stages", "children"
        }
        assert span["additionalProperties"] is False
        assert span["properties"]["children"]["items"] == {"$ref": "#/definitions/span"}

    def test_stage_definition_matches_validator(self):
        stage = TRACE_SCHEMA["definitions"]["stage"]
        assert set(stage["required"]) == {"calls", "time_s", "counters"}
        assert stage["properties"]["calls"]["type"] == "integer"

    def test_schema_is_json_serialisable(self):
        import json

        assert json.loads(json.dumps(TRACE_SCHEMA)) == TRACE_SCHEMA

    def test_validator_does_not_mutate(self):
        doc = make_doc()
        snapshot = copy.deepcopy(doc)
        validate_trace(doc)
        assert doc == snapshot


class TestServiceSection:
    """The optional ``service`` counter section of online-service traces."""

    def test_service_section_accepted(self):
        doc = Tracer().finish(service={"submitted": 10, "rejected": 1.0})
        validated = validate_trace(doc)
        assert validated["service"] == {"submitted": 10.0, "rejected": 1.0}

    def test_omitted_when_not_given(self):
        assert "service" not in Tracer().finish()

    def test_non_numeric_service_counter_rejected(self):
        doc = Tracer().finish(service={"submitted": 1.0})
        doc["service"]["submitted"] = "many"
        with pytest.raises(TraceValidationError, match=r"\$\.service\.submitted"):
            validate_trace(doc)

    def test_service_must_be_mapping(self):
        doc = Tracer().finish(service={})
        doc["service"] = [1, 2]
        with pytest.raises(TraceValidationError, match=r"\$\.service"):
            validate_trace(doc)

    def test_round_trips_through_json(self):
        import json

        doc = Tracer().finish(service={"batches": 3.0})
        assert validate_trace(json.loads(json.dumps(doc)))["service"] == {"batches": 3.0}


class TestReplicaSection:
    """The optional ``replica`` per-replica counter section (serve runs)."""

    def test_replica_section_accepted(self):
        doc = Tracer().finish(
            replica={
                "replica-0": {"batches": 4, "answered": 17.0},
                "replica-1": {"batches": 3, "answered": 12.0},
            }
        )
        validated = validate_trace(doc)
        assert validated["replica"]["replica-0"] == {"batches": 4.0, "answered": 17.0}

    def test_omitted_when_not_given(self):
        assert "replica" not in Tracer().finish()

    def test_non_numeric_replica_counter_rejected(self):
        doc = Tracer().finish(replica={"replica-0": {"batches": 1.0}})
        doc["replica"]["replica-0"]["batches"] = "lots"
        with pytest.raises(TraceValidationError, match=r"\$\.replica\.replica-0\.batches"):
            validate_trace(doc)

    def test_replica_entry_must_be_counter_map(self):
        doc = Tracer().finish(replica={"replica-0": {}})
        doc["replica"]["replica-0"] = 7
        with pytest.raises(TraceValidationError, match=r"\$\.replica\.replica-0"):
            validate_trace(doc)

    def test_round_trips_through_json(self):
        import json

        doc = Tracer().finish(replica={"replica-0": {"swaps": 2.0}})
        loaded = validate_trace(json.loads(json.dumps(doc)))
        assert loaded["replica"] == {"replica-0": {"swaps": 2.0}}


class TestOptionalKeyLockstep:
    """TRACE_SCHEMA and the validator must agree on their key sets.

    Formerly a handwritten comparison of ``_OPTIONAL_KEYS`` against the
    schema document; now the contract-drift analyzer pass derives both
    sides from the AST (DRIFT-001/002 cover span and top-level keys),
    so this test just runs the pass over the real tree.
    """

    def test_schema_and_validator_have_no_computed_drift(self):
        from pathlib import Path

        from repro.analysis.model import ProjectModel
        from repro.analysis.passes import contracts

        src = Path(__file__).resolve().parents[2] / "src"
        model = ProjectModel.load(src / "repro", display_base=src)
        drift = [d for d in contracts.run(model) if d.rule in ("DRIFT-001", "DRIFT-002")]
        assert drift == [], "\n" + "\n".join(d.format() for d in drift)

    def test_service_schema_entry_is_a_counter_map(self):
        entry = TRACE_SCHEMA["properties"]["service"]
        assert entry == {"type": "object", "additionalProperties": {"type": "number"}}
