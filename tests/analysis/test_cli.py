"""Tests for the ``python -m repro.lint`` command-line entry point."""

from repro.lint import main

CLEAN = "x = 1\n"
DIRTY = "import numpy as np\npts = np.random.rand(10, 2)\n"


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(CLEAN)
    assert main([str(tmp_path)]) == 0
    assert capsys.readouterr().out == ""


def test_exit_one_with_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(DIRTY)
    assert main([str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "[nondeterminism]" in captured.out
    assert "bad.py:2:" in captured.out
    assert "1 finding" in captured.err


def test_exit_two_without_paths(capsys):
    assert main([]) == 2
    assert "no paths" in capsys.readouterr().err


def test_exit_two_on_unknown_rule(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(CLEAN)
    assert main(["--select", "no-such-rule", str(tmp_path)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_select_limits_rules(tmp_path):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert main(["--select", "bare-except", str(tmp_path)]) == 0
    assert main(["--select", "nondeterminism", str(tmp_path)]) == 1


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "sqrt-discipline",
        "counter-discipline",
        "buffer-pool-bypass",
        "nondeterminism",
        "mutable-default-arg",
        "bare-except",
        "nxndist-arg-order",
    ):
        assert name in out
