"""Astronomical catalogue cross-matching with ANN.

The paper's TAC workload comes from astrometry, where a standard task is
*cross-matching*: for every star of a new observation catalogue, find the
nearest star of a reference catalogue and accept the pair when it is
within an astrometric tolerance.  That is precisely the All-Nearest-
Neighbor operation between two (differently sized) datasets.

This example synthesises a reference catalogue and a noisy, partially
overlapping observation of it, cross-matches the two with the MBA
algorithm, and reports match completeness and the cost counters —
including how the buffer pool behaves when the catalogues outgrow it.

Run:  python examples/star_catalog_crossmatch.py
"""

import numpy as np

from repro import StorageManager, build_join_indexes, mba_join, tac_surrogate

MATCH_TOLERANCE_DEG = 0.02  # accept matches within ~72 arcseconds


def main() -> None:
    rng = np.random.default_rng(42)

    # Reference catalogue: 30K star positions (RA, Dec).
    reference = tac_surrogate(30_000, seed=5)

    # Observation: 60% of the reference stars re-observed with small
    # astrometric noise, plus 2K spurious detections.
    observed_idx = rng.choice(len(reference), size=18_000, replace=False)
    observed = reference[observed_idx] + rng.normal(0, 0.002, (18_000, 2))
    spurious = np.column_stack(
        [rng.random(2_000) * 360.0, rng.uniform(-90, 90, 2_000)]
    )
    observation = np.vstack([observed, spurious])

    # Cross-match: nearest reference star for every observed star.
    storage = StorageManager(page_size=2048, pool_pages=256)  # 512 KB pool
    obs_index, ref_index = build_join_indexes(observation, reference, storage)
    storage.reset_counters()
    storage.drop_caches()
    result, stats = mba_join(obs_index, ref_index)
    io = storage.io_snapshot()
    stats.page_misses += io["page_misses"]
    stats.io_time_s += io["io_time_s"]

    matched = 0
    correct = 0
    for obs_id, ref_id, dist in result.pairs():
        if dist <= MATCH_TOLERANCE_DEG:
            matched += 1
            if obs_id < 18_000 and ref_id == observed_idx[obs_id]:
                correct += 1

    print(f"observation stars     : {len(observation):,}")
    print(f"matches within {MATCH_TOLERANCE_DEG} deg: {matched:,}")
    print(f"correctly re-identified: {correct:,} / 18,000 "
          f"({100 * correct / 18_000:.1f}%)")
    print(f"distance evaluations  : {stats.distance_evaluations:,}")
    print(f"page misses           : {stats.page_misses:,} "
          f"(simulated I/O {stats.io_time_s:.2f}s)")

    assert correct > 17_000, "cross-match should recover nearly all real stars"


if __name__ == "__main__":
    main()
