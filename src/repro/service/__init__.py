"""Online ANN query service with a micro-batched MBA execution core.

The serving layer between "reproduction" and "system": an arriving
stream of nearest-neighbour requests is coalesced into small ad-hoc
query sets and answered with the paper's batched traversal, turning
MBA's amortisation thesis into an online latency/throughput win.

Pipeline::

    submit() ──> bounded queue ──> coalescer (max_batch / max_delay_ms)
                    │                   │
                Overloaded          one flush
              (backpressure)            │
                            scratch MBRQT over the batch
                                        │
                        one mba_join over a read-only snapshot
                  (singleton flushes fall back to nearest_iter)

See :class:`AnnService` for the service, :class:`ServiceConfig` for the
knobs, and :mod:`repro.bench.service` for the closed-loop load
generator behind ``BENCH_service.json``.
"""

from __future__ import annotations

from .clock import Clock, FakeClock, SystemClock
from .config import ServiceConfig
from .engine import BatchEngine, FlushOutcome
from .queueing import MicroBatchQueue, Overloaded, ServiceClosed
from .request import Answer, PendingRequest, Request
from .service import AnnService, BatchReport, ServiceCounters

__all__ = [
    "AnnService",
    "Answer",
    "BatchEngine",
    "BatchReport",
    "Clock",
    "FakeClock",
    "FlushOutcome",
    "MicroBatchQueue",
    "Overloaded",
    "PendingRequest",
    "Request",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceCounters",
    "SystemClock",
]
