"""Tests for the shared paged-index machinery (Node, persist, read)."""

import numpy as np

from repro.core.geometry import Rect
from repro.index.base import BuildInternal, BuildLeaf, Node, PagedIndex
from repro.storage.manager import StorageManager
from repro.storage.serialization import encode_internal, encode_leaf


def leaf(points, ids=None):
    points = np.asarray(points, dtype=np.float64)
    if ids is None:
        ids = np.arange(len(points), dtype=np.int64)
    return BuildLeaf(np.asarray(ids, dtype=np.int64), points, Rect.from_points(points))


class TestBuildNodes:
    def test_leaf_count(self):
        node = leaf([[0, 0], [1, 1], [2, 2]])
        assert node.count == 3
        assert node.is_leaf

    def test_internal_count_and_rect(self):
        a = leaf([[0, 0], [1, 1]])
        b = leaf([[5, 5], [6, 7]], ids=[2, 3])
        parent = BuildInternal(children=[a, b])
        parent.recompute_rect()
        assert parent.count == 4
        assert not parent.is_leaf
        assert parent.rect == Rect([0, 0], [6, 7])


class TestPersistAndRead:
    def make_index(self, storage=None, pack=False):
        storage = storage or StorageManager(page_size=512, pool_pages=8)
        a = leaf([[0, 0], [1, 1]])
        b = leaf([[5, 5], [6, 7]], ids=[2, 3])
        parent = BuildInternal(children=[a, b])
        parent.recompute_rect()
        return PagedIndex.persist(parent, storage.create_file(pack_pages=pack), kind="test")

    def test_metadata(self):
        index = self.make_index()
        assert index.size == 4
        assert index.dims == 2
        assert index.height == 2
        assert index.kind == "test"
        assert "test" in repr(index)

    def test_read_structure(self):
        index = self.make_index()
        root = index.root_node()
        assert not root.is_leaf
        assert root.n_entries == 2
        assert list(root.counts) == [2, 2]
        child = index.node(int(root.child_ids[0]))
        assert child.is_leaf
        assert child.n_entries == 2

    def test_leaf_rects_are_degenerate_points(self):
        index = self.make_index()
        root = index.root_node()
        child = index.node(int(root.child_ids[0]))
        rects = child.rects
        assert np.array_equal(rects.lo, rects.hi)

    def test_all_points_and_node_count(self):
        index = self.make_index()
        ids, pts = index.all_points()
        assert sorted(ids.tolist()) == [0, 1, 2, 3]
        assert index.node_count() == 3
        assert len(list(index.iter_leaves())) == 2

    def test_packed_and_unpacked_read_identically(self):
        plain = self.make_index(pack=False)
        packed = self.make_index(pack=True)
        a = sorted(plain.all_points()[0].tolist())
        b = sorted(packed.all_points()[0].tolist())
        assert a == b

    def test_unbalanced_tree_height(self):
        storage = StorageManager(page_size=512, pool_pages=8)
        deep = BuildInternal(
            children=[
                leaf([[0, 0]]),
                BuildInternal(children=[leaf([[2, 2]], ids=[1]), leaf([[3, 3]], ids=[2])]),
            ]
        )
        deep.children[1].recompute_rect()
        deep.recompute_rect()
        index = PagedIndex.persist(deep, storage.create_file(), kind="test")
        assert index.height == 3
        assert index.size == 3


class TestNodeDecode:
    def test_decode_internal(self):
        payload = encode_internal(
            np.array([7]), np.array([3]), np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
        )
        node = Node.decode(payload)
        assert not node.is_leaf
        assert node.n_entries == 1
        assert node.rects[0] == Rect([0, 0], [1, 1])

    def test_decode_leaf(self):
        payload = encode_leaf(np.array([9]), np.array([[2.0, 3.0]]))
        node = Node.decode(payload)
        assert node.is_leaf
        assert node.n_entries == 1
        assert np.array_equal(node.points[0], [2.0, 3.0])
