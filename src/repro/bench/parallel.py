"""Scaling experiment for the sharded executor → ``BENCH_parallel.json``.

Runs the same ANN/AkNN workload through
:func:`~repro.parallel.executor.parallel_mba_join` at several worker
counts and emits a machine-readable artifact so future changes have a
perf trajectory to regress against.

Time is modeled, not wall-clocked: a worker's cost is its machine-
independent modeled CPU (:func:`~repro.bench.harness.modeled_cpu_seconds`
over its own counters) plus its simulated I/O time, and a run's modeled
wall time is the *slowest shard* (the merge is a dict union, negligible).
This keeps the artifact stable across host machines and Python versions
— exactly the discipline the figure benchmarks follow.

Artifact schema (``schema`` key = ``repro.bench.parallel/v1``)::

    {
      "schema": "repro.bench.parallel/v1",
      "dataset":  {"distribution", "n", "dims", "seed"},
      "workload": {"kind", "k", "exclude_self", "metric",
                   "page_size", "pool_pages"},
      "baseline_workers": <first worker count>,
      "runs": [
        {
          "workers":            <worker count requested>,
          "n_shards":           <shards actually formed>,
          "pool_pages_per_worker": <pool_pages // workers>,
          "wall_model_s":       <max over shards of modeled cpu + sim I/O>,
          "speedup_vs_baseline": <baseline wall_model_s / this one>,
          "modeled_cpu_s":      <sum over shards>,
          "io_time_s":          <sum over shards>,
          "counters":           <sum of per-shard QueryStats, as_dict>,
          "coordinator":        {"distance_evaluations": <seed-bound evals>},
          "result":             {"pair_count", "total_distance"},
          "shards": [
            {"shard_id", "n_roots", "points", "modeled_cpu_s",
             "io_time_s", "counters": <QueryStats.as_dict>,
             "io": <IOSnapshot>}, ...
          ]
        }, ...
      ]
    }

Invariants the artifact exhibits (and tests assert): every run's
``counters`` equal the field-wise sum of its ``shards[*].counters``, and
every run's ``result`` checksum is identical — sharding changes the
schedule, never the answer.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..api import build_index
from ..core.pruning import PruningMetric
from ..core.stats import QueryStats
from ..data import gstd
from ..obs.tracer import current_tracer
from ..parallel.executor import ShardReport, parallel_mba_join
from .experiments import BenchConfig
from .harness import modeled_cpu_seconds

__all__ = ["parallel_scaling", "format_parallel_report", "SCHEMA"]

SCHEMA = "repro.bench.parallel/v1"


def _shard_row(report: ShardReport, dims: int) -> dict[str, object]:
    return {
        "shard_id": report.shard_id,
        "n_roots": report.n_roots,
        "points": report.points,
        "modeled_cpu_s": modeled_cpu_seconds(report.stats, dims),
        "io_time_s": report.io["io_time_s"],
        "counters": report.stats.as_dict(),
        "io": dict(report.io),
    }


def parallel_scaling(
    cfg: BenchConfig | None = None,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    kind: str = "mbrqt",
    distribution: str = "gaussian",
    n: int | None = None,
    dims: int = 2,
    k: int = 1,
    out_path: str | Path | None = None,
) -> dict[str, object]:
    """Run the scaling sweep and (optionally) write ``BENCH_parallel.json``.

    One index is built once; every worker count traverses the same
    read-only snapshot, each worker with a cold ``pool/n_workers`` buffer
    pool, so runs differ only in the sharding.  Raises if any run's
    result checksum deviates from the baseline's — the artifact must
    never record a speedup bought with a wrong answer.
    """
    if not worker_counts:
        raise ValueError("worker_counts must name at least one worker count")
    cfg = cfg or BenchConfig.from_env()
    n = n if n is not None else cfg.syn_n
    pts = gstd.generate(n, dims, distribution, seed=cfg.seed)
    storage = cfg.storage()
    index = build_index(pts, storage, kind=kind)

    runs: list[dict[str, object]] = []
    baseline_wall: float | None = None
    baseline_checksum: tuple[int, float] | None = None
    tracer = current_tracer()
    for workers in worker_counts:
        if tracer is None:
            result, stats, reports = parallel_mba_join(
                index, index, storage, n_workers=workers, k=k, exclude_self=True
            )
        else:
            with tracer.span("parallel-run", workers=workers):
                result, stats, reports = parallel_mba_join(
                    index, index, storage, n_workers=workers, k=k,
                    exclude_self=True, trace=tracer,
                )
        shard_rows = [_shard_row(r, dims) for r in reports]
        aggregate = QueryStats()
        for report in reports:
            aggregate.merge(report.stats)
        wall = max(
            float(row["modeled_cpu_s"]) + float(row["io_time_s"])  # type: ignore[arg-type]
            for row in shard_rows
        )
        checksum = (result.pair_count(), result.total_distance())
        if baseline_wall is None:
            baseline_wall = wall
            baseline_checksum = checksum
        elif checksum != baseline_checksum:
            raise AssertionError(
                f"{workers}-worker result {checksum} deviates from baseline "
                f"{baseline_checksum}: sharding must not change the answer"
            )
        runs.append(
            {
                "workers": workers,
                "n_shards": len(reports),
                "pool_pages_per_worker": max(1, storage.pool.capacity_pages // workers),
                "wall_model_s": wall,
                "speedup_vs_baseline": baseline_wall / wall if wall else 1.0,
                "modeled_cpu_s": sum(float(row["modeled_cpu_s"]) for row in shard_rows),  # type: ignore[arg-type]
                "io_time_s": sum(float(row["io_time_s"]) for row in shard_rows),  # type: ignore[arg-type]
                "counters": aggregate.as_dict(),
                "coordinator": {
                    "distance_evaluations": stats.distance_evaluations
                    - aggregate.distance_evaluations
                },
                "result": {"pair_count": checksum[0], "total_distance": checksum[1]},
                "shards": shard_rows,
            }
        )

    report = {
        "schema": SCHEMA,
        "dataset": {"distribution": distribution, "n": n, "dims": dims, "seed": cfg.seed},
        "workload": {
            "kind": kind,
            "k": k,
            "exclude_self": True,
            "metric": str(PruningMetric.NXNDIST),
            "page_size": cfg.page_size,
            "pool_pages": storage.pool.capacity_pages,
        },
        "baseline_workers": worker_counts[0],
        "runs": runs,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_parallel_report(report: dict[str, object]) -> str:
    """Text table over the artifact (the CLI's human-readable view)."""
    dataset = report["dataset"]
    workload = report["workload"]
    assert isinstance(dataset, dict) and isinstance(workload, dict)
    title = (
        f"Parallel scaling — {workload['kind']} self-A{workload['k']}NN on "
        f"{dataset['distribution']} (n={dataset['n']:,}, D={dataset['dims']})"
    )
    lines = [title, "-" * len(title)]
    header = ["workers", "shards", "wall_model_s", "speedup", "mcpu_s", "io_s", "misses"]
    rows = []
    runs = report["runs"]
    assert isinstance(runs, list)
    for run in runs:
        counters = run["counters"]
        rows.append(
            [
                str(run["workers"]),
                str(run["n_shards"]),
                f"{run['wall_model_s']:.3f}",
                f"{run['speedup_vs_baseline']:.2f}x",
                f"{run['modeled_cpu_s']:.3f}",
                f"{run['io_time_s']:.3f}",
                str(counters["page_misses"]),
            ]
        )
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
