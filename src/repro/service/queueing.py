"""Bounded admission queue and the micro-batch coalescing policy.

Two service-design decisions live here, both deliberately boring and
explicit:

* **Admission control** — the queue has a hard capacity.  A submission
  that would exceed it raises :class:`Overloaded` *immediately* instead
  of growing the queue: under sustained overload an online service must
  shed load at the door, not accumulate unbounded latency.  The queue
  can therefore never exceed its bound (tests assert this).
* **Coalescing policy** — a batch is released when it is *full*
  (``max_batch`` requests) or *ripe* (the oldest queued request has
  waited ``max_delay_s``).  Small ``max_delay_s`` trades a little
  latency for the amortisation the batched MBA traversal buys; the
  sweep in ``BENCH_service.json`` quantifies that trade.

The queue itself is not locked — the owning :class:`~repro.service.
service.AnnService` serialises access under its own condition variable,
which also carries the worker-thread wakeups.
"""

from __future__ import annotations

from collections import deque

from .request import PendingRequest

__all__ = ["Overloaded", "ServiceClosed", "MicroBatchQueue"]


class ServiceClosed(RuntimeError):
    """The service shut down before this admitted request was flushed.

    Raised from ``ticket.result()`` — never silently dropped: a caller
    holding a ticket always learns its fate, either an answer or this.
    Shutdown is *prompt* by design (``close`` stops flushing and fails
    the remaining queue deterministically); callers who need their
    answers drain with ``pump(force=True)`` or wait on tickets before
    closing.
    """

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        super().__init__(
            f"service closed before request {request_id} was flushed"
        )


class Overloaded(RuntimeError):
    """Admission rejected: the service queue is at capacity.

    Carries ``capacity`` so callers (and load generators) can report the
    bound that was hit.  Backpressure is explicit — the caller decides
    whether to retry, shed, or block.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        super().__init__(
            f"service queue is at capacity ({capacity}); request rejected"
        )


class MicroBatchQueue:
    """FIFO of pending requests with a bound and a release policy."""

    __slots__ = ("capacity", "max_batch", "max_delay_s", "_pending")

    def __init__(self, capacity: int, max_batch: int, max_delay_s: float) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.capacity = capacity
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        # Owner-confined: AnnService serialises access under its _cond.
        self._pending: deque[PendingRequest] = deque()  # guarded-by: owner

    def __len__(self) -> int:
        return len(self._pending)

    def offer(self, pending: PendingRequest) -> None:
        """Admit one request or raise :class:`Overloaded` (never grows past
        ``capacity``)."""
        if len(self._pending) >= self.capacity:
            raise Overloaded(self.capacity)
        self._pending.append(pending)

    def oldest_wait_s(self, now_s: float) -> float:
        """How long the head of the queue has been waiting (0 if empty)."""
        if not self._pending:
            return 0.0
        return max(0.0, now_s - self._pending[0].request.submitted_s)

    def ready(self, now_s: float) -> bool:
        """Whether the release policy would flush a batch right now."""
        if not self._pending:
            return False
        if len(self._pending) >= self.max_batch:
            return True
        return self.oldest_wait_s(now_s) >= self.max_delay_s

    def ripe_in_s(self, now_s: float) -> float | None:
        """Seconds until the window policy ripens (None if empty).

        The worker thread uses this as its condition-wait timeout, so it
        sleeps exactly until the oldest request's window expires instead
        of polling.
        """
        if not self._pending:
            return None
        return max(0.0, self.max_delay_s - self.oldest_wait_s(now_s))

    def take(self, now_s: float, force: bool = False) -> list[PendingRequest]:
        """Pop the next batch (up to ``max_batch``), or ``[]``.

        ``force=True`` bypasses the window policy — used by explicit
        flushes and shutdown draining; the batch size bound still holds.
        """
        if not force and not self.ready(now_s):
            return []
        batch: list[PendingRequest] = []
        while self._pending and len(batch) < self.max_batch:
            batch.append(self._pending.popleft())
        return batch
