"""Tests for the ``python -m repro.lint`` and ``python -m repro
analyze`` command-line entry points."""

import textwrap

from repro.cli import main as repro_main
from repro.lint import main

CLEAN = "x = 1\n"
DIRTY = "import numpy as np\npts = np.random.rand(10, 2)\n"


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(CLEAN)
    assert main([str(tmp_path)]) == 0
    assert capsys.readouterr().out == ""


def test_exit_one_with_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(DIRTY)
    assert main([str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "[nondeterminism]" in captured.out
    assert "bad.py:2:" in captured.out
    assert "1 finding" in captured.err


def test_exit_two_without_paths(capsys):
    assert main([]) == 2
    assert "no paths" in capsys.readouterr().err


def test_exit_two_on_unknown_rule(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(CLEAN)
    assert main(["--select", "no-such-rule", str(tmp_path)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_select_limits_rules(tmp_path):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert main(["--select", "bare-except", str(tmp_path)]) == 0
    assert main(["--select", "nondeterminism", str(tmp_path)]) == 1


def test_format_json(tmp_path, capsys):
    import json

    (tmp_path / "bad.py").write_text(DIRTY)
    assert main(["--format", "json", str(tmp_path)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "repro.lint"
    (finding,) = doc["findings"]
    assert finding["rule"] == "nondeterminism"
    assert finding["line"] == 2
    assert finding["path"].endswith("bad.py")
    assert "nondeterminism" in doc["rules"]


def test_format_sarif(tmp_path, capsys):
    import json

    (tmp_path / "bad.py").write_text(DIRTY)
    assert main(["--format", "sarif", str(tmp_path)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    (result,) = run["results"]
    assert result["ruleId"] == "nondeterminism"
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 2
    declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "nondeterminism" in declared


def test_out_file(tmp_path, capsys):
    import json

    (tmp_path / "bad.py").write_text(DIRTY)
    report = tmp_path / "report.json"
    assert main(["--format", "json", "--out", str(report), str(tmp_path)]) == 1
    assert capsys.readouterr().out == ""
    doc = json.loads(report.read_text())
    assert doc["findings"][0]["rule"] == "nondeterminism"


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "sqrt-discipline",
        "counter-discipline",
        "buffer-pool-bypass",
        "nondeterminism",
        "mutable-default-arg",
        "bare-except",
        "nxndist-arg-order",
    ):
        assert name in out


RACY = """
    import threading

    class Service:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._count = 0  # guarded-by: _lock

        def bad(self) -> None:
            self._count = 0
"""


def _racy_pkg(tmp_path):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "service.py").write_text(textwrap.dedent(RACY))
    return root


class TestAnalyzeCommand:
    def test_list_rules(self, capsys):
        assert repro_main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RACE-001", "PURE-001", "DRIFT-001"):
            assert rule_id in out

    def test_new_finding_fails_the_gate(self, tmp_path, capsys):
        root = _racy_pkg(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = repro_main(
            ["analyze", "--root", str(root), "--baseline", str(baseline)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "[RACE-001]" in captured.out
        assert "1 new finding" in captured.err

    def test_write_baseline_then_clean_then_stale(self, tmp_path, capsys):
        root = _racy_pkg(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = ["analyze", "--root", str(root), "--baseline", str(baseline)]
        assert repro_main(args + ["--write-baseline"]) == 0
        # The grandfathered finding no longer fails the gate...
        assert repro_main(args) == 0
        # ...until it is fixed, at which point the entry is stale.
        (root / "service.py").write_text(textwrap.dedent(RACY).replace(
            "self._count = 0\n", "with self._lock:\n            self._count = 0\n"
        ))
        capsys.readouterr()
        assert repro_main(args) == 1
        assert "stale baseline entry" in capsys.readouterr().err

    def test_sarif_output_to_file(self, tmp_path, capsys):
        import json

        root = _racy_pkg(tmp_path)
        out_file = tmp_path / "analyze.sarif"
        code = repro_main([
            "analyze", "--root", str(root),
            "--baseline", str(tmp_path / "baseline.json"),
            "--format", "sarif", "--out", str(out_file),
        ])
        assert code == 1
        assert capsys.readouterr().out == ""
        doc = json.loads(out_file.read_text())
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["RACE-001"]
