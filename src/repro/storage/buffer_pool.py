"""LRU buffer pool over a :class:`~repro.storage.disk.PageStore`.

The paper's experimental design (Section 4.1) revolves around a small
buffer pool — 64 pages of 8 KB, i.e. 512 KB — precisely so that I/O
behaviour differentiates the algorithms.  Figure 3(b) then sweeps the pool
from 512 KB to 8 MB.  This class reproduces that knob.

The pool caches *decoded* objects keyed by node id, with a capacity
measured in pages and each entry carrying its page weight.  Most nodes
occupy exactly one page; a wide node (e.g. a high-dimensional MBRQT
internal node) may span several contiguous pages, mirroring SHORE's large
records, and then occupies that many pages of pool capacity and incurs
that many physical reads on a miss.  (A real buffer manager caches raw
frames and decodes at C speed; here the Python decode is the analogous
per-miss cost, so tying it to misses keeps the cost model honest.)
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from typing import TypeVar, cast

from .disk import DEFAULT_PAGE_SIZE, PageStore

__all__ = ["BufferPool", "FrameKey", "pool_pages_for_bytes"]

T = TypeVar("T")

FrameKey = Hashable
"""Buffer-pool frame key: a page id, or any hashable node key."""


def pool_pages_for_bytes(pool_bytes: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Translate a pool size in bytes (the paper's unit) to a page count."""
    if pool_bytes < page_size:
        raise ValueError(f"buffer pool of {pool_bytes} B cannot hold one {page_size} B page")
    return pool_bytes // page_size


class BufferPool:
    """Fixed-capacity, page-weighted LRU cache of decoded pages/nodes.

    Counters:

    * ``logical_reads`` — pages requested through the pool (hits + misses).
    * ``misses`` — pages that had to be physically read from the store.

    Simulated I/O time lives on the underlying :class:`PageStore`, which
    only the misses touch.
    """

    def __init__(self, store: PageStore, capacity_pages: int = 64) -> None:
        if capacity_pages <= 0:
            raise ValueError(f"capacity_pages must be positive, got {capacity_pages}")
        self.store = store
        self.capacity_pages = capacity_pages
        self._frames: OrderedDict[FrameKey, tuple[object, int]] = (  # guarded-by: owner
            OrderedDict()
        )
        self._used_pages = 0  # guarded-by: owner
        self.logical_reads = 0  # guarded-by: owner
        self.misses = 0  # guarded-by: owner

    def __contains__(self, key: FrameKey) -> bool:
        return key in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def used_pages(self) -> int:
        return self._used_pages

    def fetch(self, page_id: int, decode: Callable[[bytes], T]) -> T:
        """Fetch a single-page object, decoding the page bytes on a miss."""
        return self.fetch_node(page_id, 1, lambda: decode(self.store.read(page_id)))

    def fetch_node(self, key: FrameKey, npages: int, load: Callable[[], T]) -> T:
        """Return the cached object for ``key``; call ``load`` on a miss.

        ``load`` must perform the physical page reads itself (so the store's
        simulated I/O clock advances) and return the decoded object.  The
        entry then occupies ``npages`` pages of pool capacity.

        A cached key must always be re-fetched with the weight it was
        inserted under: hits are charged the *cached* weight (so
        ``logical_reads`` and ``_used_pages`` cannot drift apart), and a
        mismatching ``npages`` raises — a node's page footprint is a
        property of the stored node, not of the caller.
        """
        entry = self._frames.get(key)
        if entry is not None:
            obj, cached_pages = entry
            if cached_pages != npages:
                raise ValueError(
                    f"frame {key!r} cached with weight {cached_pages} pages, "
                    f"re-fetched with {npages}"
                )
            self.logical_reads += cached_pages
            self._frames.move_to_end(key)
            return cast(T, obj)
        self.logical_reads += npages
        self.misses += npages
        obj = load()
        self._frames[key] = (obj, npages)
        self._used_pages += npages
        self._evict_if_needed(exempt=key)
        return obj

    def _evict_if_needed(self, exempt: FrameKey) -> None:
        # Evict least-recently-used entries until within capacity.  The
        # entry just inserted is exempt so that a node wider than the whole
        # pool can still be read (it simply will never be a hit) — SHORE
        # behaves the same way for large records.
        while self._used_pages > self.capacity_pages and len(self._frames) > 1:
            key = next(iter(self._frames))
            if key == exempt:
                # Move the exempt entry to the MRU end and retry.
                self._frames.move_to_end(key)
                key = next(iter(self._frames))
                if key == exempt:
                    break
            __, npages = self._frames.pop(key)
            self._used_pages -= npages

    def clear(self) -> None:
        """Drop every cached frame (counters are kept)."""
        self._frames.clear()
        self._used_pages = 0

    def reset_counters(self) -> None:
        """Zero hit/miss counters (cached frames are kept)."""
        self.logical_reads = 0
        self.misses = 0

    def counters(self) -> dict[str, int]:
        """Flat hit/miss counters (a tracer counter source)."""
        return {
            "logical_reads": self.logical_reads,
            "misses": self.misses,
            "hits": self.hits,
        }

    @property
    def hits(self) -> int:
        return self.logical_reads - self.misses

    @property
    def hit_rate(self) -> float:
        if self.logical_reads == 0:
            return 0.0
        return self.hits / self.logical_reads
