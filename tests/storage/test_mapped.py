"""Zero-copy equivalence: mapped epoch reads == snapshot-path reads.

The serving tier's whole correctness argument rests on one property:
a :class:`~repro.storage.mapped.MappedPageStore` over a published epoch
artifact is observationally identical to the in-memory
:class:`~repro.storage.disk.PageStore` the snapshot path would rebuild —
same bytes per page, same physical counters, same simulated latency.
These tests pin that property down with hypothesis over arbitrary node
payloads and both file layouts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage import (
    EPOCH_FORMAT,
    StorageManager,
    map_manager,
    map_store,
    read_epoch_meta,
    write_epoch,
)
from repro.storage.mapped import MappedPageStore

PAGE = 256

_quick = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _publish(tmp_path, payloads, pack_pages):
    """Write ``payloads`` through a NodeFile and publish the epoch."""
    manager = StorageManager(page_size=PAGE, pool_pages=8)
    file = manager.create_file(pack_pages=pack_pages)
    for payload in payloads:
        file.append_node(payload)
    file.flush()
    snapshot = manager.snapshot()
    out = write_epoch(
        tmp_path / "epoch", snapshot, spec=None, epoch=0, size=len(payloads)
    )
    return manager, file, snapshot, out


payloads_strategy = st.lists(
    st.binary(min_size=0, max_size=3 * PAGE), min_size=1, max_size=12
)


class TestBitEquality:
    @given(payloads=payloads_strategy, pack_pages=st.booleans())
    @_quick
    def test_page_reads_bit_identical(self, tmp_path_factory, payloads, pack_pages):
        tmp_path = tmp_path_factory.mktemp("epoch")
        __, __, snapshot, out = _publish(tmp_path, payloads, pack_pages)
        mapped = map_store(out)
        baseline = StorageManager.reopen(snapshot, pool_pages=8).store
        assert len(mapped) == len(baseline)
        for page_id in range(len(baseline)):
            assert mapped.read(page_id) == baseline.read(page_id)
        # Same physical accounting, same simulated latency.
        assert mapped.physical_reads == baseline.physical_reads
        assert mapped.io_time_s == baseline.io_time_s

    @given(payloads=payloads_strategy, pack_pages=st.booleans())
    @_quick
    def test_node_reads_bit_identical(self, tmp_path_factory, payloads, pack_pages):
        # Through the full stack: mapped manager + reattached NodeFile
        # must decode byte-for-byte what the writing file stored.
        tmp_path = tmp_path_factory.mktemp("epoch")
        manager, file, snapshot, out = _publish(tmp_path, payloads, pack_pages)
        spec = file.spec()
        from repro.storage import NodeFile

        mapped_manager = map_manager(out, pool_pages=8)
        mapped_file = NodeFile.reattach(mapped_manager.pool, spec)
        base_manager = StorageManager.reopen(snapshot, pool_pages=8)
        base_file = NodeFile.reattach(base_manager.pool, spec)
        for node_id, payload in enumerate(payloads):
            assert mapped_file.read_node(node_id, bytes) == payload
            assert base_file.read_node(node_id, bytes) == payload
        assert mapped_manager.io_snapshot() == base_manager.io_snapshot()


class TestArtifact:
    def test_meta_roundtrip(self, tmp_path):
        __, __, __, out = _publish(tmp_path, [b"abc", b"x" * PAGE], False)
        meta = read_epoch_meta(out)
        assert meta.page_size == PAGE
        assert meta.epoch == 0
        assert meta.size == 2
        assert meta.as_dict()["format"] == EPOCH_FORMAT

    def test_mapped_store_is_read_only(self, tmp_path):
        __, __, __, out = _publish(tmp_path, [b"abc"], False)
        store = map_store(out)
        with pytest.raises(RuntimeError, match="read-only"):
            store.write(0, b"zz")
        with pytest.raises(RuntimeError, match="read-only"):
            store.allocate(b"zz")

    def test_dump_pages_matches_snapshot(self, tmp_path):
        __, __, snapshot, out = _publish(tmp_path, [b"a", b"b" * 700], True)
        assert map_store(out).dump_pages() == snapshot.pages

    def test_out_of_range_read_raises(self, tmp_path):
        __, __, __, out = _publish(tmp_path, [b"a"], False)
        store = map_store(out)
        with pytest.raises(IndexError, match="out of range"):
            store.read(len(store))

    def test_wide_page_rejected(self, tmp_path):
        from repro.storage import StorageSnapshot
        from repro.storage.disk import DiskModel

        snap = StorageSnapshot(
            pages=(b"x" * 300,), page_size=PAGE, disk=DiskModel(page_size=PAGE)
        )
        with pytest.raises(ValueError, match="wider than page_size"):
            write_epoch(tmp_path / "bad", snap, spec=None, epoch=0, size=0)

    def test_format_tag_checked(self, tmp_path):
        __, __, __, out = _publish(tmp_path, [b"a"], False)
        meta_file = out / "meta.json"
        meta_file.write_text(meta_file.read_text().replace(EPOCH_FORMAT, "bogus/v0"))
        with pytest.raises(ValueError, match="not a"):
            map_store(out)

    def test_readonly_manager_refuses_new_files(self, tmp_path):
        __, __, __, out = _publish(tmp_path, [b"a"], False)
        manager = map_manager(out)
        with pytest.raises(RuntimeError, match="read-only"):
            manager.create_file()


class TestMappedPageStoreGeometry:
    def test_shape_validation(self):
        pages = np.zeros((2, PAGE), dtype=np.uint8)
        with pytest.raises(ValueError, match="lengths"):
            MappedPageStore(pages, np.zeros(3, dtype=np.int64), PAGE)
        with pytest.raises(ValueError, match="pages must be"):
            MappedPageStore(pages, np.zeros(2, dtype=np.int64), PAGE + 1)
