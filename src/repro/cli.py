"""Command-line interface: ``python -m repro <command>``.

Five commands cover the common workflows without writing any code:

* ``datasets`` — generate and describe the Table 2 workloads.
* ``join`` — run one ANN/AkNN method on a generated workload and print
  the result summary plus cost counters.  ``--workers N`` shards the
  MBA/RBA join across N worker processes (exact, same result);
  ``--node-cache E`` layers an E-entry decoded-node cache above the
  buffer pool.
* ``experiment`` — regenerate one of the paper's figures.
* ``parallel-bench`` — sweep worker counts and write the
  ``BENCH_parallel.json`` scaling artifact.
* ``kernel-bench`` — microbenchmark the core kernels (LPQ push/pop,
  cross metrics, end-to-end ``mba_join``) and write ``BENCH_core.json``.

Examples::

    python -m repro datasets --scale 0.01
    python -m repro join --method mba --dataset tac -n 5000 -k 3
    python -m repro join --method mba --dataset gaussian -n 5000 --workers 4
    python -m repro join --method mba --dataset tac -n 5000 --node-cache 256
    python -m repro experiment fig4
    python -m repro parallel-bench --workers 1 2 4 --out BENCH_parallel.json
    python -m repro kernel-bench --smoke --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from . import bench
from .api import build_index
from .core.mba import mba_join
from .core.pruning import PruningMetric
from .data import gstd
from .data.datasets import fc_surrogate, table2_datasets, tac_surrogate
from .join.bnn import bnn_join
from .join.gorder import gorder_join
from .join.hnn import hnn_join
from .join.mnn import mnn_join
from .parallel.executor import parallel_mba_join
from .storage.manager import StorageManager

__all__ = ["main"]

_EXPERIMENTS = {
    "fig3a": (bench.fig3a_tac_methods, "Figure 3(a) — TAC, ANN methods"),
    "fig3b": (bench.fig3b_bufferpool, "Figure 3(b) — FC 10D, pool sweep"),
    "fig4": (bench.fig4_dimensionality, "Figure 4 — dimensionality sweep"),
    "fig5": (bench.fig5_aknn_tac, "Figure 5 — AkNN on TAC"),
    "fig6": (bench.fig6_aknn_fc, "Figure 6 — AkNN on FC"),
    "traversal": (bench.ablation_traversal_variants, "Traversal variants"),
    "filter": (bench.ablation_filter_stage, "Filter Stage ablation"),
    "countbound": (bench.ablation_count_bound, "Count-aware AkNN bound"),
}


def _make_dataset(name: str, n: int, dims: int, seed: int) -> np.ndarray:
    if name == "tac":
        return tac_surrogate(n, seed=seed)
    if name == "fc":
        return fc_surrogate(n, seed=seed)
    if name in gstd.DISTRIBUTIONS:
        return gstd.generate(n, dims, name, seed=seed)
    raise SystemExit(
        f"unknown dataset {name!r}: choose tac, fc, or one of {sorted(gstd.DISTRIBUTIONS)}"
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    data = table2_datasets(scale=args.scale)
    print(f"Table 2 datasets at scale {args.scale}:")
    for name, pts in data.items():
        spans = pts.max(axis=0) - pts.min(axis=0)
        print(
            f"  {name:8s} n={len(pts):>8,}  D={pts.shape[1]:>2}  "
            f"extent span ratio={spans.max() / max(spans.min(), 1e-12):.1f}"
        )
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    points = _make_dataset(args.dataset, args.n, args.dims, args.seed)
    if args.node_cache < 0:
        raise SystemExit(f"--node-cache must be >= 0, got {args.node_cache}")
    storage = StorageManager.with_pool_bytes(
        args.pool_kb * 1024, args.page_size, node_cache_entries=args.node_cache
    )
    metric = PruningMetric.NXNDIST if args.metric == "nxndist" else PruningMetric.MAXMAXDIST

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1 and args.method not in ("mba", "rba"):
        raise SystemExit(
            f"--workers applies only to the sharded MBA/RBA executor, not {args.method!r}"
        )

    t0 = time.process_time()
    if args.method in ("mba", "rba"):
        kind = "mbrqt" if args.method == "mba" else "rstar"
        index = build_index(points, storage, kind=kind)
        build_s = time.process_time() - t0
        storage.reset_counters()
        storage.drop_caches()
        t0 = time.process_time()
        if args.workers > 1:
            result, stats, reports = parallel_mba_join(
                index, index, storage, n_workers=args.workers,
                metric=metric, k=args.k, exclude_self=True,
            )
        else:
            result, stats = mba_join(index, index, metric=metric, k=args.k, exclude_self=True)
    elif args.method == "bnn":
        index = build_index(points, storage, kind="rstar")
        build_s = time.process_time() - t0
        storage.reset_counters()
        storage.drop_caches()
        t0 = time.process_time()
        result, stats = bnn_join(index, points, metric=metric, k=args.k, exclude_self=True)
    elif args.method == "mnn":
        index = build_index(points, storage, kind="rstar")
        build_s = time.process_time() - t0
        storage.reset_counters()
        storage.drop_caches()
        t0 = time.process_time()
        result, stats = mnn_join(index, points, k=args.k, exclude_self=True)
    elif args.method == "gorder":
        build_s = 0.0
        t0 = time.process_time()
        result, stats = gorder_join(points, points, storage, k=args.k, exclude_self=True)
    elif args.method == "hnn":
        build_s = 0.0
        t0 = time.process_time()
        result, stats = hnn_join(points, points, storage, k=args.k, exclude_self=True)
    else:
        raise SystemExit(f"unknown method {args.method!r}")
    query_s = time.process_time() - t0
    if args.workers > 1:
        # Workers counted their own I/O into stats; the coordinator's
        # storage saw only the shard-planning reads.
        io_time_s, page_misses = stats.io_time_s, stats.page_misses
    else:
        io = storage.io_snapshot()
        io_time_s, page_misses = io["io_time_s"], io["page_misses"]

    print(f"{args.method.upper()} self-{'ANN' if args.k == 1 else f'A{args.k}NN'} "
          f"on {args.dataset} (n={args.n:,})")
    if args.workers > 1:
        shard_pts = ", ".join(f"{r.points:,}" for r in reports)
        print(f"  workers          : {args.workers} ({len(reports)} shards; points {shard_pts})")
    print(f"  index build      : {build_s:.2f}s")
    print(f"  query CPU        : {query_s:.2f}s")
    print(f"  simulated I/O    : {io_time_s:.2f}s ({page_misses:,} misses)")
    print(f"  distance evals   : {stats.distance_evaluations:,}")
    print(f"  node expansions  : {stats.node_expansions:,}")
    print(f"  result pairs     : {result.pair_count():,}")
    print(f"  total distance   : {result.total_distance():.4f} (checksum)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    entry = _EXPERIMENTS.get(args.name)
    if entry is None:
        raise SystemExit(f"unknown experiment {args.name!r}: choose from {sorted(_EXPERIMENTS)}")
    fn, title = entry
    runs = fn()
    extra = sorted({key for r in runs for key in r.params})
    print(bench.format_table(title, runs, extra_cols=extra))
    return 0


def _cmd_parallel_bench(args: argparse.Namespace) -> int:
    if args.dataset not in gstd.DISTRIBUTIONS:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}: choose one of {sorted(gstd.DISTRIBUTIONS)}"
        )
    cfg = bench.BenchConfig.from_env()
    if args.seed is not None:
        cfg.seed = args.seed
    if args.page_size is not None:
        cfg.page_size = args.page_size
    if args.pool_kb is not None:
        cfg.pool_bytes = args.pool_kb * 1024
    out = None if args.out == "-" else args.out
    report = bench.parallel_scaling(
        cfg,
        worker_counts=tuple(args.workers),
        kind=args.kind,
        distribution=args.dataset,
        n=args.n,
        dims=args.dims,
        k=args.k,
        out_path=out,
    )
    print(bench.format_parallel_report(report))
    if out is not None:
        print(f"\nwrote {out}")
    return 0


def _cmd_kernel_bench(args: argparse.Namespace) -> int:
    out = None if args.out == "-" else args.out
    report = bench.kernel_bench(smoke=args.smoke, seed=args.seed, out_path=out)
    print(bench.format_kernel_report(report))
    if out is not None:
        print(f"\nwrote {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="All-Nearest-Neighbor query reproduction (Chen & Patel, ICDE 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="generate and describe the Table 2 workloads")
    p.add_argument("--scale", type=float, default=0.01, help="cardinality scale (1.0 = paper)")
    p.set_defaults(fn=_cmd_datasets)

    p = sub.add_parser("join", help="run one ANN/AkNN method on a generated workload")
    p.add_argument("--method", default="mba",
                   choices=["mba", "rba", "bnn", "mnn", "gorder", "hnn"])
    p.add_argument("--dataset", default="tac",
                   help="tac, fc, uniform, gaussian, skewed, correlated")
    p.add_argument("-n", type=int, default=10_000, help="number of points")
    p.add_argument("--dims", type=int, default=2, help="dimensionality (synthetic only)")
    p.add_argument("-k", type=int, default=1, help="neighbours per point")
    p.add_argument("--metric", default="nxndist", choices=["nxndist", "maxmaxdist"])
    p.add_argument("--page-size", type=int, default=2048)
    p.add_argument("--pool-kb", type=int, default=512)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the sharded MBA/RBA executor")
    p.add_argument("--node-cache", type=int, default=0,
                   help="decoded-node cache entries above the buffer pool "
                        "(0 disables; sliced per worker when sharded)")
    p.set_defaults(fn=_cmd_join)

    p = sub.add_parser("experiment", help="regenerate one of the paper's figures")
    p.add_argument("name", help=f"one of {sorted(_EXPERIMENTS)}")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser(
        "parallel-bench",
        help="sweep worker counts and write the BENCH_parallel.json artifact",
    )
    p.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                   help="worker counts to sweep (first is the speedup baseline)")
    p.add_argument("--out", default="BENCH_parallel.json",
                   help="artifact path ('-' to skip writing)")
    p.add_argument("--dataset", default="gaussian",
                   help=f"one of {sorted(gstd.DISTRIBUTIONS)}")
    p.add_argument("-n", type=int, default=None,
                   help="number of points (default: bench config syn_n)")
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("-k", type=int, default=1)
    p.add_argument("--kind", default="mbrqt", choices=["mbrqt", "rstar"])
    p.add_argument("--seed", type=int, default=None,
                   help="dataset seed (default: bench config seed)")
    p.add_argument("--page-size", type=int, default=None)
    p.add_argument("--pool-kb", type=int, default=None)
    p.set_defaults(fn=_cmd_parallel_bench)

    p = sub.add_parser(
        "kernel-bench",
        help="microbenchmark the core kernels and write BENCH_core.json",
    )
    p.add_argument("--smoke", action="store_true",
                   help="seconds-long CI configuration (same code paths)")
    p.add_argument("--out", default="BENCH_core.json",
                   help="artifact path ('-' to skip writing)")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(fn=_cmd_kernel_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse ``argv`` (default ``sys.argv[1:]``) and run the chosen command."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
