"""The core-kernel benchmark sweep (smoke mode) and its artifact schema.

CI tracks ``BENCH_core.json`` across commits, so these tests pin the
artifact's shape — the keys downstream comparison scripts read — and the
invariants that make a run meaningful: the decoded-node cache must see
traffic (nonzero hits) and the end-to-end sections must report the same
deterministic result checksums on every run with the same seed.
"""

import json

from repro.bench.kernels import SCHEMA, format_kernel_report, kernel_bench


class TestSmokeReport:
    def test_schema_and_sections(self, tmp_path):
        out = tmp_path / "BENCH_core.json"
        report = kernel_bench(smoke=True, seed=7, out_path=out)
        assert report["schema"] == SCHEMA
        assert report["smoke"] is True
        assert report["seed"] == 7

        assert {row["scenario"] for row in report["lpq"]} == {"ann", "aknn-counts"}
        for row in report["lpq"]:
            assert row["enqueues"] > 0
            assert row["push_rate_eps"] > 0
            assert row["pop_rate_eps"] > 0

        kernels = {row["kernel"] for row in report["metrics"]}
        assert {"minmindist_cross", "maxmaxdist_cross", "nxndist_cross"} <= kernels
        for row in report["metrics"]:
            assert row["per_call_us"] > 0

        labels = [row["label"] for row in report["end_to_end"]]
        assert labels == ["mbrqt-n1200-k1", "mbrqt-n1200-k3", "rstar-n800-k1"]
        for row in report["end_to_end"]:
            assert row["wall_s"] > 0
            assert row["counters"]["distance_evaluations"] > 0
            assert row["result"]["pair_count"] == row["n"] * row["k"]
            assert row["result"]["total_distance"] > 0

        # The frontier section covers the same scenarios and must report
        # identical answers between the two engines.
        assert [row["label"] for row in report["frontier"]] == labels
        for row in report["frontier"]:
            assert row["match"] is True
            assert row["baseline_wall_s"] > 0
            assert row["frontier_wall_s"] > 0
            assert row["speedup"] > 0
            assert row["result"]["pair_count"] == row["n"] * row["k"]

        # The artifact on disk is the same JSON document.
        on_disk = json.loads(out.read_text())
        assert on_disk["schema"] == SCHEMA
        assert [r["label"] for r in on_disk["end_to_end"]] == labels
        assert [r["label"] for r in on_disk["frontier"]] == labels

    def test_node_cache_sees_traffic(self):
        # Acceptance criterion: bidirectional traversal must produce
        # nonzero decoded-node cache hits in the tracked artifact.
        report = kernel_bench(smoke=True, seed=7)
        for row in report["end_to_end"]:
            assert row["node_cache_entries"] > 0
            assert row["counters"]["node_cache_hits"] > 0

    def test_results_deterministic_across_runs(self):
        a = kernel_bench(smoke=True, seed=7)
        b = kernel_bench(smoke=True, seed=7)
        for row_a, row_b in zip(a["end_to_end"], b["end_to_end"]):
            assert row_a["result"] == row_b["result"]
            assert (
                row_a["counters"]["distance_evaluations"]
                == row_b["counters"]["distance_evaluations"]
            )
        for row_a, row_b in zip(a["frontier"], b["frontier"]):
            assert row_a["result"] == row_b["result"]
            assert (
                row_a["counters"]["distance_evaluations"]
                == row_b["counters"]["distance_evaluations"]
            )

    def test_format_report_renders_every_section(self):
        report = kernel_bench(smoke=True, seed=7)
        text = format_kernel_report(report)
        assert "LPQ push/pop" in text
        assert "Cross metrics" in text
        assert "End-to-end mba_join" in text
        assert "Frontier engine vs mba_join" in text
        for row in report["end_to_end"]:
            assert row["label"] in text
