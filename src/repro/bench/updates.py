"""Sustained-update service benchmark → ``BENCH_updates.json``.

Measures what the write path costs the serving layer: a stream of
interleaved inserts and deletes runs against a live
:class:`~repro.service.AnnService` while closed query rounds measure
latency, so the artifact captures query behaviour *under* churn —
including the automatic epoch compactions the stream triggers.

Correctness is asserted, not sampled, at every epoch boundary: the
moment a compaction publishes a new epoch, a fixed probe query set is
answered by the service and compared — ``(distance, id)`` for
``(distance, id)`` — against a scratch index rebuilt from the bench's
own independent bookkeeping of the surviving points.  A single
divergence fails the run; hot swaps must be invisible to answers.  The
run also refuses to finish with a single rejected, cancelled, or
unanswered request — zero lost requests across every hot swap.

Time is modeled, not wall-clocked, exactly as in the other artifacts:
the service runs on a :class:`~repro.service.FakeClock` and every
flush advances it by the flush's machine-independent modeled CPU
(:func:`~repro.bench.harness.modeled_cpu_seconds`) plus simulated I/O.

Artifact schema (``schema`` key = ``repro.bench.updates/v1``)::

    {
      "schema": "repro.bench.updates/v1",
      "dataset":  {"distribution", "n", "dims", "seed"},
      "workload": {"k", "rounds", "updates_per_round",
                   "queries_per_round", "compact_threshold"},
      "runs": [
        {
          "kind":            "mbrqt" | "rstar",
          "epochs":          <last published epoch>,
          "boundary_checks": <probe queries verified at epoch swaps>,
          "final_size":      <surviving points at drain>,
          "flushes":         <query batches executed>,
          "latency_s":       {"mean", "p50", "p95", "p99"},
          "counters":        <summed QueryStats.as_dict()>,
          "service":         <ServiceCounters.as_dict()>,
        }, ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.stats import QueryStats
from ..data import gstd
from ..index import build_mbrqt, build_rstar, nearest_iter
from ..service import AnnService, FakeClock, PendingRequest, ServiceConfig
from ..storage.manager import StorageManager
from .harness import modeled_cpu_seconds
from .service import _percentile

__all__ = ["run_update_bench", "format_update_report", "SCHEMA"]

SCHEMA = "repro.bench.updates/v1"

#: The smoke configuration CI runs (same code paths, seconds of work).
SMOKE = {
    "n_target": 400,
    "rounds": 6,
    "updates_per_round": 12,
    "queries_per_round": 8,
    "compact_threshold": 16,
}


def _scratch_answer(
    alive: dict[int, np.ndarray],
    kind: str,
    query: np.ndarray,
    k: int,
) -> list[tuple[float, int]]:
    """The ground truth: rebuild from scratch, browse, sort by (dist, id).

    Built from the bench's own survivor bookkeeping — deliberately *not*
    from any state the service maintains — so a write-path bug cannot
    corrupt both sides of the comparison.
    """
    ids = np.asarray(list(alive), dtype=np.int64)
    pts = np.stack(list(alive.values()))
    storage = StorageManager()
    if kind == "mbrqt":
        index = build_mbrqt(pts, storage, point_ids=ids)
    else:
        index = build_rstar(pts, storage, point_ids=ids)
    found: list[tuple[float, int]] = []
    for dist, point_id, __ in nearest_iter(index, query):
        found.append((dist, point_id))
        if len(found) >= k:
            break
    return sorted(found)


def _check_boundary(
    service: AnnService,
    alive: dict[int, np.ndarray],
    kind: str,
    probes: np.ndarray,
    k: int,
) -> int:
    """Assert service answers == scratch rebuild at an epoch boundary."""
    checked = 0
    for probe in probes:
        answer = service.query(probe, k=k)
        got = sorted(zip(answer.distances, answer.neighbor_ids))
        want = _scratch_answer(alive, kind, probe, k)
        if got != want:
            raise AssertionError(
                f"epoch-boundary divergence ({kind}, epoch "
                f"{service.engine.epoch}): service {got!r} != scratch {want!r}"
            )
        checked += 1
    return checked


def run_update_bench(
    kinds: tuple[str, ...] = ("mbrqt", "rstar"),
    n_target: int = 1_000,
    rounds: int = 10,
    updates_per_round: int = 24,
    queries_per_round: int = 16,
    compact_threshold: int = 32,
    dims: int = 2,
    k: int = 3,
    distribution: str = "uniform",
    seed: int = 11,
    smoke: bool = False,
    out_path: str | Path | None = None,
) -> dict[str, object]:
    """Run the sustained-update stream and (optionally) write the artifact.

    Each round issues ``updates_per_round`` interleaved inserts/deletes
    (auto-compacting at ``compact_threshold`` pending operations) and
    then measures a batch of ``queries_per_round`` coalesced queries on
    the modeled clock.  ``smoke=True`` swaps in the small CI
    configuration (:data:`SMOKE`), overriding the size arguments.
    """
    if smoke:
        n_target = int(SMOKE["n_target"])
        rounds = int(SMOKE["rounds"])
        updates_per_round = int(SMOKE["updates_per_round"])
        queries_per_round = int(SMOKE["queries_per_round"])
        compact_threshold = int(SMOKE["compact_threshold"])
    target = gstd.generate(n_target, dims, distribution, seed=seed)
    inserts = gstd.generate(rounds * updates_per_round, dims, distribution, seed=seed + 1)
    queries = gstd.generate(
        rounds * queries_per_round, dims, distribution, seed=seed + 2
    )
    probes = gstd.generate(4, dims, distribution, seed=seed + 3)

    runs: list[dict[str, object]] = []
    for kind in kinds:
        rng = np.random.default_rng(seed + 4)
        cfg = ServiceConfig(
            kind=kind,
            max_batch=queries_per_round,
            max_delay_ms=0.0,
            queue_capacity=max(4 * queries_per_round, 16),
            compact_threshold=compact_threshold,
        )
        clock = FakeClock()
        service = AnnService(target, cfg, clock=clock)
        # Independent survivor bookkeeping — the ground truth's input.
        alive: dict[int, np.ndarray] = {i: target[i] for i in range(n_target)}
        next_insert = 0
        next_id = n_target
        last_epoch = service.engine.epoch
        boundary_checks = 0
        latencies: list[float] = []
        totals = QueryStats()
        flushes = 0
        for round_no in range(rounds):
            for __ in range(updates_per_round):
                if alive and rng.random() < 0.5:
                    victim = int(rng.choice(np.asarray(list(alive), dtype=np.int64)))
                    assert service.delete(victim)
                    del alive[victim]
                else:
                    point = inserts[next_insert]
                    next_insert += 1
                    service.insert(point, next_id)
                    alive[next_id] = point
                    next_id += 1
                if service.engine.epoch != last_epoch:
                    # A compaction just hot-swapped the base epoch:
                    # prove the swap changed no answer.
                    last_epoch = service.engine.epoch
                    boundary_checks += _check_boundary(
                        service, alive, kind, probes, k
                    )
            tickets: list[PendingRequest] = [
                service.submit(queries[round_no * queries_per_round + i], k=k)
                for i in range(queries_per_round)
            ]
            while any(not t.done() for t in tickets):
                report = service.pump(force=True)
                if report is None:
                    raise AssertionError("update bench stalled with requests in flight")
                flushes += 1
                totals.merge(report.stats)
                clock.advance(
                    modeled_cpu_seconds(report.stats, dims) + report.stats.io_time_s
                )
            latencies.extend(
                clock.now() - t.request.submitted_s for t in tickets
            )
        counters = service.counters
        if counters.rejected or counters.cancelled:
            raise AssertionError(
                f"lost requests under churn ({kind}): rejected={counters.rejected} "
                f"cancelled={counters.cancelled}"
            )
        if counters.answered != counters.submitted:
            raise AssertionError(
                f"unanswered requests under churn ({kind}): "
                f"answered={counters.answered} != submitted={counters.submitted}"
            )
        final_epoch = service.engine.epoch
        final_size = len(alive)
        service.close()
        latencies.sort()
        runs.append(
            {
                "kind": kind,
                "epochs": final_epoch,
                "boundary_checks": boundary_checks,
                "final_size": final_size,
                "flushes": flushes,
                "latency_s": {
                    "mean": sum(latencies) / len(latencies),
                    "p50": _percentile(latencies, 0.50),
                    "p95": _percentile(latencies, 0.95),
                    "p99": _percentile(latencies, 0.99),
                },
                "counters": totals.as_dict(),
                "service": counters.as_dict(),
            }
        )

    doc: dict[str, object] = {
        "schema": SCHEMA,
        "dataset": {"distribution": distribution, "n": n_target, "dims": dims, "seed": seed},
        "workload": {
            "k": k,
            "rounds": rounds,
            "updates_per_round": updates_per_round,
            "queries_per_round": queries_per_round,
            "compact_threshold": compact_threshold,
        },
        "runs": runs,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def format_update_report(doc: dict[str, object]) -> str:
    """Text table over the artifact (the CLI's human-readable view)."""
    dataset = doc["dataset"]
    workload = doc["workload"]
    assert isinstance(dataset, dict) and isinstance(workload, dict)
    n_updates = int(workload["rounds"]) * int(workload["updates_per_round"])
    title = (
        f"Queries under sustained updates — k={workload['k']} on "
        f"{dataset['distribution']} (n={dataset['n']:,}, D={dataset['dims']}, "
        f"{n_updates} updates, compact every {workload['compact_threshold']} ops)"
    )
    lines = [title, "-" * len(title)]
    header = ["kind", "epochs", "checks", "final_n", "flushes",
              "p50_ms", "p95_ms", "p99_ms", "compactions"]
    rows = []
    runs = doc["runs"]
    assert isinstance(runs, list)
    for run in runs:
        lat = run["latency_s"]
        service = run["service"]
        rows.append(
            [
                str(run["kind"]),
                str(run["epochs"]),
                str(run["boundary_checks"]),
                str(run["final_size"]),
                str(run["flushes"]),
                f"{lat['p50'] * 1e3:.3f}",
                f"{lat['p95'] * 1e3:.3f}",
                f"{lat['p99'] * 1e3:.3f}",
                f"{service['compactions']:.0f}",
            ]
        )
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append("(every epoch boundary probe-verified against a scratch-rebuilt "
                 "index; runs fail on any rejected, cancelled, or unanswered request)")
    return "\n".join(lines)
