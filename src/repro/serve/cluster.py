"""The serving cluster: writer engine, epoch artifacts, replica fleet.

:class:`ReplicaCluster` is the process-topology counterpart of
:class:`~repro.service.service.AnnService`'s engine layer.  It owns

* the **write path** — one :class:`~repro.service.engine.BatchEngine`
  whose mutable mirror and delta absorb inserts/deletes exactly as the
  single-process service does;
* the **epoch fence** — every publish is exported as a zero-copy
  artifact directory (:func:`repro.storage.mapped.write_epoch`) under
  ``workdir`` and broadcast to the replicas as a ``swap``, so the fleet
  hot-swaps on :class:`~repro.storage.versioning.VersionManager`
  publishes without restarting;
* the **shared cache** — one
  :class:`~repro.serve.shared_cache.SharedNodeCache` segment created
  before the first spawn (so the lock inherits cleanly) and handed to
  every replica;
* the **replica fleet** — N :class:`~repro.serve.replica.ReplicaHandle`
  workers, each with a fair slice of the pool/node-cache budget (same
  partition discipline as the sharded thread path: scale-out must not
  quietly multiply cache memory).

Consistency note: replicas answer from the last *published* epoch; the
pending delta is the writer's alone.  That is the standard
replicated-search contract (ROADMAP north star: faiss behind app
servers) — bounded staleness between publishes, bit-identical answers
for any given epoch.  Tests that need delta-inclusive answers compact
first.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from ..service.engine import BatchEngine
from ..storage.manager import worker_node_cache_entries, worker_pool_pages
from ..storage.mapped import write_epoch
from .config import ServeConfig
from .replica import ReplicaHandle, ReplicaSpec
from .shared_cache import SharedNodeCache

__all__ = ["ReplicaCluster"]


class ReplicaCluster:
    """A writer engine plus N mapped-epoch replicas over one workdir."""

    def __init__(
        self,
        points: np.ndarray,
        config: ServeConfig,
        workdir: str | Path,
        point_ids: np.ndarray | None = None,
        inline: bool = False,
    ) -> None:
        self.config = config
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.inline = inline
        self.engine = BatchEngine(points, config.service, point_ids)
        self.cache: SharedNodeCache | None = None
        if config.cache_slots > 0:
            self.cache = SharedNodeCache.create(
                n_slots=config.cache_slots, slot_bytes=config.cache_slot_bytes
            )
        self._epoch_dir = self._export_epoch()
        self.replicas: list[ReplicaHandle] = []
        for rid in range(config.replicas):
            spec = ReplicaSpec(
                replica_id=rid,
                epoch_dir=str(self._epoch_dir),
                config=config.service,
                cache=self.cache.handle() if self.cache is not None else None,
                pool_pages=worker_pool_pages(
                    config.service.pool_pages, config.replicas, rid
                ),
                node_cache_entries=worker_node_cache_entries(
                    config.service.node_cache_entries, config.replicas, rid
                ),
            )
            handle = ReplicaHandle(spec, inline=inline)
            handle.start()
            self.replicas.append(handle)

    # -- epochs ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    @property
    def epoch_dir(self) -> Path:
        """The artifact directory of the currently published epoch."""
        return self._epoch_dir

    def _export_epoch(self) -> Path:
        version = self.engine.versions.current
        assert version.snapshot is not None  # writer epochs always have one
        return write_epoch(
            self.workdir / f"epoch-{version.epoch:06d}",
            version.snapshot,
            version.spec,
            epoch=version.epoch,
            size=version.size,
        )

    # -- the write path -------------------------------------------------------

    def insert(self, point: np.ndarray, point_id: int) -> None:
        """Insert into the writer; visible to replicas after ``compact``.

        Like :meth:`~repro.service.service.AnnService.insert`, once
        ``compact_threshold`` operations are pending the delta is folded
        and published automatically — here that also swaps the fleet.
        """
        self.engine.insert(point, point_id)
        self._maybe_compact()

    def delete(self, point_id: int) -> bool:
        deleted = self.engine.delete(point_id)
        if deleted:
            self._maybe_compact()
        return deleted

    def _maybe_compact(self) -> None:
        if self.engine.pending_ops >= self.config.service.compact_threshold:
            self.compact()

    @property
    def pending_ops(self) -> int:
        return self.engine.pending_ops

    def compact(self) -> int | None:
        """Publish the pending delta as a new epoch and swap the fleet.

        Returns the new epoch number (``None`` when the delta was empty
        and nothing was published).  The swap is a broadcast: each
        replica finishes its in-flight batch on the old mapping, then
        maps the new artifact — zero downtime, bounded staleness.
        """
        new_epoch = self.engine.compact()
        if new_epoch is None:
            return None
        self._epoch_dir = self._export_epoch()
        for replica in self.replicas:
            if replica.alive:
                replica.swap(str(self._epoch_dir))
        return new_epoch

    # -- fleet ----------------------------------------------------------------

    def stats(self) -> list[dict[str, Any]]:
        """Per-replica counter snapshots (skips dead replicas)."""
        out = []
        for replica in self.replicas:
            if replica.alive and replica.conn is not None:
                out.append(replica.stats())
        return out

    def close(self) -> None:
        """Stop the fleet, then tear down the shared segment (owner)."""
        for replica in self.replicas:
            try:
                replica.stop()
            except (BrokenPipeError, EOFError, OSError):
                replica.join()
        if self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "ReplicaCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
