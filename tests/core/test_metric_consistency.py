"""Bit-exact agreement of the scalar, batch, cross and fused metric forms.

The columnar traversal engine mixes kernel granularities freely: a bound
seeded by a scalar call must be comparable against values produced by the
batch kernels, and the fused ``cross_pair`` forms (including the 2-D
per-dimension fast path) feed the same LPQs as the standalone cross
kernels.  Equality here must be *bitwise*, not approximate — the golden
replay tests pin pop sequences and checksums to the exact float values,
so a 1-ulp drift between forms (e.g. an FMA-contracted ``np.dot`` vs. a
plain ``np.sum`` reduction) would silently change traversal order.

Hypothesis drives the rectangle geometry, deliberately including
degenerate point rects (zero-extent sides) on both operands: those hit
the tent-function and sweep-substitution tie cases where the 2-D fused
path is most likely to diverge from the general reduction.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect, RectArray
from repro.core.metrics import (
    maxmaxdist,
    maxmaxdist_batch,
    maxmaxdist_cross,
    minmindist,
    minmindist_batch,
    minmindist_cross,
    minmindist_maxmaxdist_cross,
    minmindist_maxmaxdist_pairs,
    minmindist_nxndist_cross,
    minmindist_nxndist_pairs,
    nxndist,
    nxndist_batch,
    nxndist_cross,
)
from repro.core.pruning import PruningMetric


def rect_arrays(dims, max_rects=6):
    """Strategy for a RectArray with a mix of proper rects and point rects.

    Coordinates are drawn from float32-representable values on a coarse
    range so that degenerate (``side == 0``) and tied-coordinate cases
    appear often; sides may be exactly zero to force point rects.
    """
    coord = st.floats(-40, 40, allow_nan=False, allow_infinity=False, width=16)
    side = st.one_of(
        st.just(0.0),
        st.floats(0, 15, allow_nan=False, allow_infinity=False, width=16),
    )

    def build(vals):
        rects = []
        for lo, s in vals:
            lo_a = np.array(lo, dtype=np.float64)
            rects.append(Rect(lo_a, lo_a + np.array(s, dtype=np.float64)))
        return RectArray.from_rects(rects)

    one_rect = st.tuples(
        st.lists(coord, min_size=dims, max_size=dims),
        st.lists(side, min_size=dims, max_size=dims),
    )
    return st.lists(one_rect, min_size=1, max_size=max_rects).map(build)


def pair_2d(draw):
    return draw(rect_arrays(2)), draw(rect_arrays(2))


class TestFusedCrossBitExact:
    """The fused kernels must equal their standalone components bitwise."""

    @given(a=rect_arrays(2), b=rect_arrays(2))
    @settings(max_examples=150, deadline=None)
    def test_fused_2d_paths(self, a, b):
        mm, mx = minmindist_maxmaxdist_cross(a, b)
        assert np.array_equal(mm, minmindist_cross(a, b))
        assert np.array_equal(mx, maxmaxdist_cross(a, b))
        mm2, nx = minmindist_nxndist_cross(a, b)
        assert np.array_equal(mm2, minmindist_cross(a, b))
        assert np.array_equal(nx, nxndist_cross(a, b))

    @given(a=rect_arrays(3), b=rect_arrays(3))
    @settings(max_examples=75, deadline=None)
    def test_fused_general_paths(self, a, b):
        mm, mx = minmindist_maxmaxdist_cross(a, b)
        assert np.array_equal(mm, minmindist_cross(a, b))
        assert np.array_equal(mx, maxmaxdist_cross(a, b))
        mm2, nx = minmindist_nxndist_cross(a, b)
        assert np.array_equal(mm2, minmindist_cross(a, b))
        assert np.array_equal(nx, nxndist_cross(a, b))

    @given(a=rect_arrays(2), b=rect_arrays(2))
    @settings(max_examples=50, deadline=None)
    def test_cross_pair_dispatch(self, a, b):
        mm, bound = PruningMetric.NXNDIST.cross_pair(a, b)
        assert np.array_equal(mm, minmindist_cross(a, b))
        assert np.array_equal(bound, nxndist_cross(a, b))
        mm, bound = PruningMetric.MAXMAXDIST.cross_pair(a, b)
        assert np.array_equal(mm, minmindist_cross(a, b))
        assert np.array_equal(bound, maxmaxdist_cross(a, b))


class TestPairRowsBitExact:
    """The frontier's row-wise kernels must equal the cross kernels.

    ``pair_rows(a[i], b[i])`` scores an arbitrary gather of rect pairs;
    its values (both the 2-D columnar fast path and the general-D
    reduction) must match the corresponding ``cross`` elements bitwise —
    the frontier engine's answer-identity to ``mba_join`` rests on it.
    """

    @given(a=rect_arrays(2), b=rect_arrays(2))
    @settings(max_examples=150, deadline=None)
    def test_pairs_2d_fast_path(self, a, b):
        self._check(a, b)

    @given(a=rect_arrays(3), b=rect_arrays(3))
    @settings(max_examples=75, deadline=None)
    def test_pairs_general_path(self, a, b):
        self._check(a, b)

    @staticmethod
    def _check(a, b):
        # Pair up every (i, j) combination as row gathers.
        ii, jj = np.meshgrid(np.arange(len(a)), np.arange(len(b)), indexing="ij")
        ii, jj = ii.ravel(), jj.ravel()
        a_lo, a_hi = a.lo[ii], a.hi[ii]
        b_lo, b_hi = b.lo[jj], b.hi[jj]
        mm_c = minmindist_cross(a, b).ravel()
        mm, nx = minmindist_nxndist_pairs(a_lo, a_hi, b_lo, b_hi)
        assert np.array_equal(mm, mm_c)
        assert np.array_equal(nx, nxndist_cross(a, b).ravel())
        mm2, mx = minmindist_maxmaxdist_pairs(a_lo, a_hi, b_lo, b_hi)
        assert np.array_equal(mm2, mm_c)
        assert np.array_equal(mx, maxmaxdist_cross(a, b).ravel())

    @given(a=rect_arrays(2), b=rect_arrays(2))
    @settings(max_examples=50, deadline=None)
    def test_pair_rows_dispatch(self, a, b):
        n = min(len(a), len(b))
        a_lo, a_hi, b_lo, b_hi = a.lo[:n], a.hi[:n], b.lo[:n], b.hi[:n]
        for metric, ref in (
            (PruningMetric.NXNDIST, minmindist_nxndist_pairs),
            (PruningMetric.MAXMAXDIST, minmindist_maxmaxdist_pairs),
        ):
            mm, bound = metric.pair_rows(a_lo, a_hi, b_lo, b_hi)
            mm_ref, bound_ref = ref(a_lo, a_hi, b_lo, b_hi)
            assert np.array_equal(mm, mm_ref)
            assert np.array_equal(bound, bound_ref)


class TestScalarBatchCrossBitExact:
    """Scalar, batch and cross forms agree bitwise, element by element."""

    @given(a=rect_arrays(2, max_rects=4), b=rect_arrays(2, max_rects=4))
    @settings(max_examples=75, deadline=None)
    def test_2d(self, a, b):
        self._check(a, b)

    @given(a=rect_arrays(3, max_rects=3), b=rect_arrays(3, max_rects=3))
    @settings(max_examples=40, deadline=None)
    def test_3d(self, a, b):
        self._check(a, b)

    @staticmethod
    def _check(a, b):
        mm_c = minmindist_cross(a, b)
        mx_c = maxmaxdist_cross(a, b)
        nx_c = nxndist_cross(a, b)
        for i in range(len(a)):
            r = a[i]
            assert np.array_equal(minmindist_batch(r, b), mm_c[i])
            assert np.array_equal(maxmaxdist_batch(r, b), mx_c[i])
            assert np.array_equal(nxndist_batch(r, b), nx_c[i])
            for j in range(len(b)):
                assert minmindist(r, b[j]) == mm_c[i, j]
                assert maxmaxdist(r, b[j]) == mx_c[i, j]
                assert nxndist(r, b[j]) == nx_c[i, j]


class TestDegenerateIdentities:
    """Sanity identities specific to point rects, checked exactly."""

    @given(a=rect_arrays(2), pts=st.lists(
        st.lists(st.floats(-40, 40, allow_nan=False, allow_infinity=False, width=16),
                 min_size=2, max_size=2),
        min_size=1, max_size=6))
    @settings(max_examples=75, deadline=None)
    def test_point_targets_nxn_equals_maxmax(self, a, pts):
        # A point target has a single witness, so the sweep saves nothing:
        # NXNDIST must equal MAXMAXDIST bit-for-bit, on every code path.
        b = RectArray.from_points(np.array(pts, dtype=np.float64))
        assert np.array_equal(nxndist_cross(a, b), maxmaxdist_cross(a, b))
        _, nx = minmindist_nxndist_cross(a, b)
        _, mx = minmindist_maxmaxdist_cross(a, b)
        assert np.array_equal(nx, mx)

    def test_coincident_point_rects_are_zero(self):
        p = Rect.from_point(np.array([3.0, -7.0]))
        arr = RectArray.from_points(np.array([[3.0, -7.0]]))
        assert minmindist(p, p) == 0.0
        assert maxmaxdist(p, p) == 0.0
        assert nxndist(p, p) == 0.0
        mm, nx = minmindist_nxndist_cross(arr, arr)
        assert mm[0, 0] == 0.0 and nx[0, 0] == 0.0
