"""Tests for the StorageManager facade."""

import pytest

from repro.storage.manager import DEFAULT_POOL_PAGES, StorageManager


class TestConstruction:
    def test_defaults_match_paper(self):
        m = StorageManager()
        assert m.page_size == 8192
        assert m.pool.capacity_pages == DEFAULT_POOL_PAGES == 64  # 512 KB

    def test_with_pool_bytes(self):
        m = StorageManager.with_pool_bytes(1024 * 1024, page_size=2048)
        assert m.pool.capacity_pages == 512

    def test_pool_smaller_than_page_rejected(self):
        with pytest.raises(ValueError):
            StorageManager.with_pool_bytes(100, page_size=8192)


class TestFiles:
    def test_files_share_disk_and_pool(self):
        m = StorageManager(page_size=64, pool_pages=8)
        f1 = m.create_file()
        f2 = m.create_file(pack_pages=True)
        f1.append_node(b"abc")
        f2.append_node(b"xyz")
        f2.flush()
        assert len(m.store) == 2
        assert f1.pool is f2.pool is m.pool

    def test_pack_pages_flag(self):
        m = StorageManager(page_size=64, pool_pages=8)
        assert m.create_file().pack_pages is False
        assert m.create_file(pack_pages=True).pack_pages is True


class TestAccounting:
    def test_io_snapshot_fields(self):
        m = StorageManager(page_size=64, pool_pages=8)
        f = m.create_file()
        nid = f.append_node(b"payload")
        f.read_node(nid, bytes)
        snap = m.io_snapshot()
        assert snap["physical_writes"] == 1
        assert snap["page_misses"] == 1
        assert snap["logical_reads"] == 1
        assert snap["io_time_s"] > 0

    def test_reset_and_drop(self):
        m = StorageManager(page_size=64, pool_pages=8)
        f = m.create_file()
        nid = f.append_node(b"x")
        f.read_node(nid, bytes)
        m.reset_counters()
        assert m.io_snapshot()["page_misses"] == 0
        # Data still cached: next read is a hit.
        f.read_node(nid, bytes)
        assert m.io_snapshot()["page_misses"] == 0
        # After dropping caches it misses again.
        m.drop_caches()
        f.read_node(nid, bytes)
        assert m.io_snapshot()["page_misses"] == 1
