"""The repository must satisfy its own lint and analyzer — the CI gate.

Running the domain rules over ``src``, ``tests``, ``benchmarks`` and
``examples`` — and the cross-module analyzer over ``src/repro`` against
the checked-in baseline — in-process (rather than shelling out) keeps
both checks in the ordinary pytest run, so a violation fails fast with
the diagnostic text in the assertion message.
"""

from pathlib import Path

from repro.analysis.analyzer import analyze_project
from repro.analysis.baseline import diff_against_baseline, load_baseline
from repro.analysis.engine import lint_paths

_REPO = Path(__file__).resolve().parents[2]


def test_repo_lints_clean():
    targets = [_REPO / d for d in ("src", "tests", "benchmarks", "examples")]
    findings = lint_paths([t for t in targets if t.exists()])
    assert findings == [], "\n" + "\n".join(d.format() for d in findings)


def test_repo_analyzes_clean_against_baseline():
    diagnostics = analyze_project(_REPO / "src" / "repro", display_base=_REPO / "src")
    baseline = load_baseline(_REPO / ".repro-analysis-baseline.json")
    new, stale = diff_against_baseline(diagnostics, baseline)
    assert new == [], "\n" + "\n".join(d.format() for d in new)
    assert stale == set(), f"stale baseline entries (fixed? remove them): {sorted(stale)}"
