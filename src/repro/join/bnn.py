"""BNN — batched nearest-neighbour search (Zhang et al., SSDBM 2004).

The strongest prior R*-tree ANN method the paper compares against.  BNN
splits the query dataset ``R`` into spatially coherent groups (here via
Z-order, the role Hilbert order plays in the original), and traverses the
target index once per group, answering every group member's kNN in that
single traversal.  This slashes the number of index traversals (CPU) and
maximises locality (I/O) relative to per-point search.

The traversal is best-first on ``MINMINDIST(group MBR, entry)`` with two
upper bounds combining into the pruning distance:

* the *metric* bound — min over count-sufficient seen entries of
  ``PM(group MBR, entry MBR)`` where ``PM`` is MAXMAXDIST in the original
  and NXNDIST in the paper's "BNN NXNDIST" variant (Figure 3(a)); this is
  what prunes before any actual distances are known;
* the *result* bound — the worst current k-th-best distance over the
  group's points, which takes over once leaves are scanned.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..core.geometry import Rect
from ..core.metrics import minmindist_batch
from ..core.order import morton_order
from ..core.pruning import PruningMetric
from ..core.result import NeighborResult
from ..core.stats import QueryStats
from ..index.base import Node, PagedIndex

__all__ = ["bnn_join", "DEFAULT_GROUP_SIZE"]

DEFAULT_GROUP_SIZE = 256
"""Query points per batch; Zhang et al. size groups to a few pages of R."""


class _MetricBound:
    """Upper bound from pruning-metric values of seen entries.

    Entries offered here are the children probed at one node expansion,
    which hold pairwise-disjoint point sets; offers from different
    expansions must not be combined (ancestors overlap descendants), so
    each offer is evaluated on its own batch and only the best scalar
    survives.

    The validity rule depends on the metric's guarantee:

    * MAXMAXDIST bounds the distance to *every* point of an entry, so one
      entry with ``count >= need`` proves ``need`` points within its maxd.
    * NXNDIST guarantees only one point per entry (Lemma 3.1), so ``need``
      disjoint entries are required: the batch's ``need``-th smallest maxd.
    """

    def __init__(self, need: int, counts_valid: bool) -> None:
        self.need = need
        self.counts_valid = counts_valid
        self.value = math.inf

    def offer(self, maxds: np.ndarray, counts: np.ndarray) -> None:
        candidate = math.inf
        if self.counts_valid:
            eligible = counts >= self.need
            if np.any(eligible):
                candidate = float(maxds[eligible].min())
        if len(maxds) >= self.need:
            kth = float(np.partition(maxds, self.need - 1)[self.need - 1])
            candidate = min(candidate, kth)
        if candidate < self.value:
            self.value = candidate


def bnn_join(
    index_s: PagedIndex,
    r_points: np.ndarray,
    r_ids: np.ndarray | None = None,
    k: int = 1,
    metric: PruningMetric = PruningMetric.MAXMAXDIST,
    group_size: int = DEFAULT_GROUP_SIZE,
    exclude_self: bool = False,
    stats: QueryStats | None = None,
) -> tuple[NeighborResult, QueryStats]:
    """ANN/AkNN via batched NN traversals of ``index_s``.

    ``metric`` defaults to MAXMAXDIST — the original BNN.  Pass
    ``PruningMetric.NXNDIST`` for the paper's upgraded variant.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    r_points = np.asarray(r_points, dtype=np.float64)
    if r_ids is None:
        r_ids = np.arange(len(r_points), dtype=np.int64)
    stats = stats if stats is not None else QueryStats()
    result = NeighborResult(k)

    order = morton_order(r_points)
    for start in range(0, len(order), group_size):
        batch = order[start : start + group_size]
        _search_group(
            index_s, r_points[batch], r_ids[batch], k, metric, exclude_self, result, stats
        )
    result.finalize()
    stats.result_pairs += result.pair_count()
    return result, stats


def _search_group(
    index_s: PagedIndex,
    points: np.ndarray,
    ids: np.ndarray,
    k: int,
    metric: PruningMetric,
    exclude_self: bool,
    result: NeighborResult,
    stats: QueryStats,
) -> None:
    """One best-first traversal of ``index_s`` answering kNN for a group."""
    m = len(points)
    group_rect = Rect.from_points(points)
    need = k + 1 if exclude_self else k

    # Per-point current k best (distances ascending) and matching ids.
    best_d = np.full((m, k), np.inf)
    best_i = np.full((m, k), -1, dtype=np.int64)

    metric_bound = _MetricBound(need, counts_valid=metric is PruningMetric.MAXMAXDIST)
    root_rect = index_s.root_rect
    metric_bound.offer(
        np.asarray([metric.scalar(group_rect, root_rect)]),
        np.asarray([index_s.size]),
    )
    stats.record_distances(1)

    heap: list[tuple[float, int, int]] = [(0.0, 0, index_s.root_id)]
    seq = 1
    while heap:
        mind, __, node_id = heapq.heappop(heap)
        bound = min(metric_bound.value, float(best_d[:, k - 1].max()))
        if mind > bound:
            stats.pruned_entries += len(heap) + 1
            break
        node = index_s.node(node_id)
        stats.node_expansions += 1
        if node.is_leaf:
            _scan_leaf(points, ids, node, exclude_self, best_d, best_i, stats)
        else:
            minds = minmindist_batch(group_rect, node.rects)
            maxds = metric.batch(group_rect, node.rects)
            stats.record_distances(2 * len(minds))
            metric_bound.offer(maxds, node.counts)
            bound = min(metric_bound.value, float(best_d[:, k - 1].max()))
            for i in range(len(minds)):
                if minds[i] <= bound:
                    heapq.heappush(heap, (float(minds[i]), seq, int(node.child_ids[i])))
                    seq += 1
                else:
                    stats.pruned_entries += 1

    for row in range(m):
        valid = np.isfinite(best_d[row])
        result.add_many(int(ids[row]), best_i[row][valid], best_d[row][valid])


def _scan_leaf(
    points: np.ndarray,
    ids: np.ndarray,
    node: Node,
    exclude_self: bool,
    best_d: np.ndarray,
    best_i: np.ndarray,
    stats: QueryStats,
) -> None:
    """Merge a leaf's points into every group member's current k best."""
    diffs = points[:, None, :] - node.points[None, :, :]
    dists = np.sqrt(np.einsum("mnd,mnd->mn", diffs, diffs))
    stats.record_distances(dists.size)
    if exclude_self:
        same = ids[:, None] == np.asarray(node.point_ids)[None, :]
        dists = np.where(same, np.inf, dists)

    k = best_d.shape[1]
    cand_d = np.concatenate([best_d, dists], axis=1)
    leaf_ids = np.broadcast_to(
        np.asarray(node.point_ids, dtype=np.int64), dists.shape
    )
    cand_i = np.concatenate([best_i, leaf_ids], axis=1)
    part = np.argpartition(cand_d, k - 1, axis=1)[:, :k]
    rows = np.arange(len(points))[:, None]
    new_d = cand_d[rows, part]
    new_i = cand_i[rows, part]
    inner = np.argsort(new_d, axis=1, kind="stable")
    best_d[:] = new_d[rows, inner]
    best_i[:] = new_i[rows, inner]
