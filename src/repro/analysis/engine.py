"""Rule engine for the domain lint: registry, suppressions, diagnostics.

The engine is deliberately small: one parse per file, one token scan for
suppression comments, and a shared :class:`FileContext` so individual
rules stay a few dozen lines each.  Rules subclass :class:`Rule`,
register themselves in a :class:`RuleRegistry`, and yield
:class:`Diagnostic` records anchored to a file and line.

Suppressions
------------
A finding is suppressed by a ``# repro-lint: ignore[rule-name]`` or
``# repro-lint: disable=rule-name`` comment either on the flagged line
or on a standalone comment line directly above it.  ``# repro-lint:
ignore`` / ``disable`` (no rule list) suppresses every rule on that
line.  Several rules may be listed: ``ignore[bare-except,
sqrt-discipline]`` or ``disable=RACE-001,PURE-003``.  Suppressions are
intentionally loud in the source — they are the reviewed, documented
exceptions to the paper's invariants.

Both the per-file lint rules and the cross-module analyzer
(:mod:`repro.analysis.analyzer`) honour the same comments; the two rule
namespaces do not overlap (lint rules are kebab-case, analyzer rules are
``PREFIX-NNN``), so each tool reports *unused* suppressions only for the
rules it owns (see :func:`unused_suppressions`).
"""

from __future__ import annotations

import ast
import enum
import io
import re
import tokenize
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Severity",
    "Diagnostic",
    "FileContext",
    "Rule",
    "RuleRegistry",
    "default_registry",
    "lint_source",
    "lint_paths",
    "unused_suppressions",
    "UNUSED_SUPPRESSION_RULE",
]

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*(?:ignore(?:\[([A-Za-z0-9_,\s-]+)\])?|disable(?:=([A-Za-z0-9_,\s-]+))?)"
)

UNUSED_SUPPRESSION_RULE = "unused-suppression"
"""Rule id of the diagnostic flagging suppression comments that matched
no finding — stale exceptions must not outlive the code they excused."""

_SUPPRESS_ALL = frozenset({"*"})
"""Sentinel rule-name set meaning "every rule" for a bare ``ignore``."""


class Severity(enum.Enum):
    """How serious a finding is.  Every built-in rule emits ``ERROR``."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a file and position."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """Render as the conventional ``path:line:col: rule message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.severity} [{self.rule}] {self.message}"

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


def _scan_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> set of rule names suppressed on that line.

    Uses the tokenizer (not a regex over raw lines) so that a
    ``repro-lint:`` inside a string literal is not mistaken for a
    suppression comment.
    """
    out: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        names = match.group(1) if match.group(1) is not None else match.group(2)
        if names is None:
            rules = _SUPPRESS_ALL
        else:
            rules = frozenset(n.strip() for n in names.split(",") if n.strip())
        out[tok.start[0]] = out.get(tok.start[0], frozenset()) | rules
    return out


class FileContext:
    """Everything a rule needs to inspect one parsed file.

    Shared per-file infrastructure: the AST, a lazily built parent map,
    an import-alias table for resolving dotted call names, and the
    suppression table.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.suppressions = _scan_suppressions(source)
        #: Lines whose suppression comment matched at least one finding —
        #: fed to :func:`unused_suppressions` after all rules have run.
        self.used_suppression_lines: set[int] = set()
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._aliases: dict[str, str] | None = None

    # -- structure ----------------------------------------------------------

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child node -> parent node, built on first use."""
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    # -- name resolution ----------------------------------------------------

    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> fully dotted module/object path, from imports.

        ``import numpy as np`` maps ``np -> numpy``; ``from math import
        sqrt as s`` maps ``s -> math.sqrt``.
        """
        if self._aliases is None:
            self._aliases = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for a in node.names:
                        self._aliases[a.asname or a.name.split(".")[0]] = (
                            a.name if a.asname else a.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                    for a in node.names:
                        if a.name == "*":
                            continue
                        self._aliases[a.asname or a.name] = f"{node.module}.{a.name}"
        return self._aliases

    def dotted_name(self, node: ast.expr) -> str | None:
        """Resolve an expression to a dotted name through import aliases.

        ``np.sqrt`` -> ``numpy.sqrt`` under ``import numpy as np``;
        returns ``None`` for anything that is not a plain name chain.
        """
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.dotted_name(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # -- suppression --------------------------------------------------------

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True if ``rule`` is suppressed on ``line`` or the line above.

        A successful match records the comment's line in
        :attr:`used_suppression_lines` so stale suppressions can be
        reported afterwards by :func:`unused_suppressions`.
        """
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules is not None and (rules & _SUPPRESS_ALL or rule in rules):
                self.used_suppression_lines.add(candidate)
                return True
        return False

    # -- diagnostics --------------------------------------------------------

    def flag(
        self,
        node: ast.AST,
        rule: Rule,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node``'s position."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Diagnostic(self.path, line, col, rule.name, message, severity)


def unused_suppressions(
    ctx: FileContext,
    is_known: Callable[[str], bool] | None = None,
    include_bare: bool = True,
) -> list[Diagnostic]:
    """Flag suppression comments in ``ctx`` that matched no finding.

    Run this *after* every rule has been checked against ``ctx``, so the
    :attr:`FileContext.used_suppression_lines` bookkeeping is complete.
    ``is_known`` restricts reporting to the rule names a given tool owns:
    the lint engine passes its registry, the cross-module analyzer its
    ``PREFIX-NNN`` catalogue, so neither flags the other's suppressions.
    A comment naming rules from *both* namespaces is skipped by both —
    split it into two comments instead.  Bare suppressions (no rule
    list) are owned by the lint engine (``include_bare=True``); the
    analyzer passes ``include_bare=False``.  Listing
    ``unused-suppression`` itself in the comment silences this check
    for that comment.
    """
    out: list[Diagnostic] = []
    for line, rules in sorted(ctx.suppressions.items()):
        if line in ctx.used_suppression_lines:
            continue
        if UNUSED_SUPPRESSION_RULE in rules:
            continue
        if rules & _SUPPRESS_ALL:
            if not include_bare:
                continue
            label = "bare suppression"
        else:
            named = rules - _SUPPRESS_ALL
            if is_known is not None and not all(is_known(r) for r in named):
                continue
            label = ", ".join(sorted(named))
        out.append(
            Diagnostic(
                ctx.path,
                line,
                0,
                UNUSED_SUPPRESSION_RULE,
                f"suppression matched no finding ({label}) — remove it",
            )
        )
    return out


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`name` (the suppression token), :attr:`summary`
    (one-line catalogue entry), and implement :meth:`check`.  A rule may
    narrow where it applies by overriding :meth:`applies_to` — e.g. the
    buffer-pool-bypass rule exempts the storage layer itself.
    """

    name: str = ""
    summary: str = ""
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (POSIX-style string)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield raw findings; the engine filters suppressed ones."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers


@dataclass
class RuleRegistry:
    """Ordered collection of rule instances, keyed by rule name."""

    rules: dict[str, Rule] = field(default_factory=dict)

    def register(self, rule: Rule) -> Rule:
        if not rule.name:
            raise ValueError(f"rule {type(rule).__name__} has no name")
        if rule.name in self.rules:
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self.rules[rule.name] = rule
        return rule

    def select(self, names: Iterable[str] | None) -> list[Rule]:
        """The rules to run; ``names=None`` means all, unknown names raise."""
        if names is None:
            return list(self.rules.values())
        chosen = []
        for n in names:
            if n not in self.rules:
                raise KeyError(f"unknown rule {n!r} (have: {', '.join(sorted(self.rules))})")
            chosen.append(self.rules[n])
        return chosen


def default_registry() -> RuleRegistry:
    """The built-in rule catalogue (imported lazily to avoid cycles)."""
    from . import rules as _rules

    return _rules.build_registry()


def lint_source(
    source: str,
    path: str = "<string>",
    registry: RuleRegistry | None = None,
    select: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint one source string; returns sorted, suppression-filtered findings."""
    registry = registry if registry is not None else default_registry()
    posix_path = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                posix_path,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                "syntax-error",
                f"cannot parse: {exc.msg}",
            )
        ]
    ctx = FileContext(posix_path, source, tree)
    found: list[Diagnostic] = []
    for rule in registry.select(select):
        if not rule.applies_to(posix_path):
            continue
        for diag in rule.check(ctx):
            if not ctx.is_suppressed(diag.line, diag.rule):
                found.append(diag)
    if select is None:
        # Only with the full catalogue can "matched no finding" mean
        # "stale" rather than "its rule was deselected this run".
        found.extend(unused_suppressions(ctx, is_known=lambda r: r in registry.rules))
    found.sort(key=lambda d: d.sort_key)
    return found


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py") if not any(part.startswith(".") for part in f.parts)
            )
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Sequence[str | Path],
    registry: RuleRegistry | None = None,
    select: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint files and directory trees; returns all findings, sorted."""
    registry = registry if registry is not None else default_registry()
    found: list[Diagnostic] = []
    for f in iter_python_files(paths):
        source = f.read_text(encoding="utf-8")
        found.extend(lint_source(source, str(f), registry=registry, select=select))
    found.sort(key=lambda d: d.sort_key)
    return found
