"""The Local Priority Queue (LPQ) — Section 3.3.1 of the paper.

Every entry of the query index ``IR`` that the traversal touches owns
exactly one LPQ.  The LPQ holds candidate entries from the target index
``IS``, each carrying:

* ``MIND`` — lower bound of the distance from the owner to the entry
  (MINMINDIST); the priority queue is ordered on this field.
* ``MAXD`` — upper bound under the chosen pruning metric (NXNDIST or
  MAXMAXDIST).

The LPQ itself keeps a ``MAXD`` pruning bound, defined (Section 3.3.1)
over the entries **currently in the priority queue**: for ANN (k = 1) the
minimum of the live MAXD values; for AkNN (k > 1) the bound must
guarantee *k distinct* points, so it is the smallest b such that live
entries with ``MAXD <= b`` jointly contain at least k points (entries
carry subtree point counts, and distinct live entries always hold
pairwise-disjoint point sets).  How many points one entry may claim
depends on the metric's guarantee: MAXMAXDIST bounds the distance to
*every* point of the entry, so its full subtree count applies, while
NXNDIST guarantees only *one* point within the bound (Lemma 3.1), so each
entry counts once — which recovers exactly the paper's Section 3.4 rule
("at least k entries present and MINMINDIST greater than the LPQ's
MAXD", tightened here from the max to the k-th smallest MAXD).  Because
contributions expire when entries pop,
a metric that keeps shrinking as the search descends (NXNDIST, Lemmas
3.2/3.3) maintains a far tighter running bound than MAXMAXDIST — this is
the mechanism behind the paper's Figure 3(a) gap.

The **Filter Stage** of the three-stage pruning (Section 3.3.3) — new
entries with a small MAXD evict queued entries whose MIND exceeds it — is
realised lazily: whenever an entry is popped (or the heap is compacted)
with ``MIND`` above the current bound, it is discarded and counted in
``lpq_filter_discards``.  This has the same pruning effect with better
asymptotics than eagerly rescanning the heap on every push.
"""

from __future__ import annotations

import heapq

import numpy as np

from .geometry import Rect
from .stats import QueryStats

__all__ = [
    "LPQ",
    "OwnerKind",
    "OBJECT",
    "NODE",
    "make_node_lpq",
    "make_object_lpq",
    "batch_bounds_rows",
]

OBJECT = 1
NODE = 0

# Type alias for documentation purposes.
OwnerKind = int

# ``extra`` payload of a heap item: None for plain node entries, an
# ``(lo, hi)`` pair for retained node rects, a coordinate row for objects.
EntryExtra = tuple[np.ndarray, np.ndarray] | np.ndarray | None

# ``(mind, seq, kind, id, count, maxd, extra)`` — see the LPQ docstring.
HeapItem = tuple[float, int, int, int, int, float, EntryExtra]

# What ``LPQ.pop`` returns: a heap item minus its ``seq`` tie-breaker.
PoppedEntry = tuple[float, int, int, int, float, EntryExtra]

_COMPACT_MIN = 64


class LPQ:
    """Priority queue of ``IS`` entries owned by one ``IR`` entry.

    Heap items are tuples ``(mind, seq, kind, id, count, maxd, extra)``:

    * node entry:   ``kind=NODE``,   ``id=node_id``,  ``count=subtree size``;
      ``extra`` is ``None``, or the entry's MBR when the caller asked to
      retain rects (needed by the uni-directional traversal variant).
    * object entry: ``kind=OBJECT``, ``id=point_id``, ``count=1``; ``extra``
      holds the point's coordinates so a node-owner LPQ can re-probe the
      object against its child LPQs.

    ``seq`` is an insertion counter used both as a heap tie-breaker (the
    paper breaks MIND ties on MAXD; ties on MIND here pop in increasing
    MAXD order because pushes are batched in that order) and as the key of
    the live-entry table used by the AkNN bound.
    """

    __slots__ = (
        "owner_kind",
        "owner_rect",
        "owner_point",
        "owner_id",
        "owner_node_id",
        "need_count",
        "_heap",
        "_seq",
        "_inherited",
        "_live",
        "_live_dirty",
        "_live_bound",
        "stats",
        "filter_enabled",
        "counts_valid",
    )

    def __init__(
        self,
        owner_kind: OwnerKind,
        owner_rect: Rect,
        inherited_bound: float,
        stats: QueryStats,
        owner_id: int = -1,
        owner_node_id: int = -1,
        owner_point: np.ndarray | None = None,
        need_count: int = 1,
        filter_enabled: bool = True,
        counts_valid: bool = False,
    ) -> None:
        self.owner_kind = owner_kind
        self.owner_rect = owner_rect
        self.owner_point = owner_point
        self.owner_id = owner_id
        self.owner_node_id = owner_node_id
        self.need_count = need_count
        self._heap: list[HeapItem] = []
        self._seq = 0
        self._inherited = float(inherited_bound)
        # Live-entry table backing the bound: seq -> (maxd, count).  The
        # paper defines the LPQ's MAXD over the entries *currently in the
        # priority queue* (Section 3.3.1), so contributions expire when
        # entries pop — this is precisely what lets NXNDIST's cross-level
        # monotonicity (Lemmas 3.2/3.3) pull ahead of MAXMAXDIST.
        self._live: dict[int, tuple[float, int]] = {}
        self._live_dirty = True
        self._live_bound = float(inherited_bound)
        self.stats = stats
        # Filter Stage on/off switch (off only in the ablation experiment).
        self.filter_enabled = filter_enabled
        # True only when the pruning metric bounds the distance to every
        # point of an entry (MAXMAXDIST); NXNDIST guarantees one point.
        self.counts_valid = counts_valid

    # -- bound ---------------------------------------------------------------

    @property
    def bound(self) -> float:
        """Current pruning upper bound (the LPQ's MAXD field).

        Per Section 3.3.1 this is computed over the entries currently in
        the queue: the minimum MAXD for ANN, and for AkNN the smallest
        value whose entries jointly guarantee ``need_count`` points.
        """
        if self._live_dirty:
            self._live_bound = self._compute_live_bound()
            self._live_dirty = False
        return self._live_bound

    def _compute_live_bound(self) -> float:
        if not self._live:
            return self._inherited
        if self.need_count == 1:
            return min(self._inherited, min(maxd for maxd, __ in self._live.values()))
        items = sorted(self._live.values())
        total = 0
        for maxd, count in items:
            total += count
            if total >= self.need_count:
                return min(self._inherited, maxd)
        return self._inherited

    def batch_bound(self, maxds: np.ndarray, counts: np.ndarray | None = None) -> float:
        """The bound this LPQ will have once a candidate batch is enqueued.

        Algorithm 4 pushes entries one at a time, updating the LPQ's MAXD
        field after each; later entries in the same expansion then face the
        tightened bound.  This computes that post-batch bound up front so
        the caller can filter the whole batch vectorised.  Batch members
        come from one node expansion, hence hold disjoint point sets, so
        for k > 1 their counts may be accumulated — but only when the
        metric guarantees every point (``counts_valid``); under NXNDIST
        each entry guarantees a single point.
        """
        if len(maxds) == 0:
            return self.bound
        if self.need_count == 1:
            return min(self.bound, float(maxds.min()))
        if counts is None or not self.counts_valid:
            # Entry-counting rule: the need-th smallest MAXD.
            if len(maxds) < self.need_count:
                return self.bound
            kth = float(np.partition(maxds, self.need_count - 1)[self.need_count - 1])
            return min(self.bound, kth)
        order = np.argsort(maxds, kind="stable")
        cum = np.cumsum(counts[order])
        reach = int(np.searchsorted(cum, self.need_count))
        if reach >= len(cum):
            return self.bound
        return min(self.bound, float(maxds[order[reach]]))


    # -- pushing --------------------------------------------------------------

    def push_nodes(
        self,
        node_ids: np.ndarray,
        counts: np.ndarray,
        minds: np.ndarray,
        maxds: np.ndarray,
        rects: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> None:
        """Enqueue a batch of node entries (already filtered by the caller).

        The caller is expected to have applied the Expand-Stage check
        ``mind <= self.bound`` (Algorithm 4, line 17); this method applies
        the bound updates and the bookkeeping.  ``rects`` optionally retains
        each entry's ``(lo, hi)`` rows for the uni-directional variant.
        """
        order = np.argsort(maxds, kind="stable")
        heap = self._heap
        for i in order:
            seq = self._seq
            self._seq = seq + 1
            maxd = float(maxds[i])
            count = int(counts[i])
            extra = None if rects is None else (rects[0][i], rects[1][i])
            heapq.heappush(
                heap, (float(minds[i]), seq, NODE, int(node_ids[i]), count, maxd, extra)
            )
            self._live[seq] = (maxd, count if self.counts_valid else 1)
        if len(order):
            self._live_dirty = True
        self.stats.lpq_enqueues += len(order)
        self._maybe_compact()

    def push_objects(
        self,
        point_ids: np.ndarray,
        minds: np.ndarray,
        maxds: np.ndarray,
        points: np.ndarray,
    ) -> None:
        """Enqueue a batch of data-object entries.

        For an object-owner LPQ ``minds == maxds ==`` the exact distances;
        for a node-owner LPQ they are the point-to-owner-MBR lower bound
        and the pruning-metric upper bound.
        """
        heap = self._heap
        order = np.argsort(maxds, kind="stable")
        for i in order:
            seq = self._seq
            self._seq = seq + 1
            maxd = float(maxds[i])
            heapq.heappush(
                heap, (float(minds[i]), seq, OBJECT, int(point_ids[i]), 1, maxd, points[i])
            )
            self._live[seq] = (maxd, 1)
        if len(point_ids):
            self._live_dirty = True
        self.stats.lpq_enqueues += len(point_ids)
        self._maybe_compact()

    # -- popping --------------------------------------------------------------

    def pop(self) -> PoppedEntry | None:
        """Pop the entry of least MIND, applying lazy Filter-Stage discards.

        Returns ``(mind, kind, id, count, maxd, extra)`` or ``None`` when the
        queue is exhausted (including when every remaining entry is
        filtered).
        """
        heap = self._heap
        while heap:
            mind, seq, kind, ident, count, maxd, extra = heapq.heappop(heap)
            self._live.pop(seq, None)
            self._live_dirty = True
            if self.filter_enabled and mind > self.bound:
                # Filter Stage: the entry was overtaken by a tighter bound
                # while queued.
                self.stats.lpq_filter_discards += 1
                continue
            return mind, kind, ident, count, maxd, extra
        return None

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    # -- maintenance ------------------------------------------------------------

    def _maybe_compact(self) -> None:
        """Drop filtered entries in bulk when the heap grows large.

        Compaction is a pure optimisation and must be observationally
        equivalent to leaving every entry for the lazy pop-time filter:
        same pop sequence, same ``lpq_filter_discards`` total after a
        drain, regardless of ``_COMPACT_MIN``.  At pop time every other
        queued entry has MIND — hence MAXD — at least the popped entry's
        MIND, so the live part of the bound can never be the discarding
        side: an entry is pop-discarded exactly when its MIND exceeds the
        *inherited* bound.  That is therefore the only criterion
        compaction may apply.  Using the current (live-tightened) bound
        here would drop entries the pop path would have kept once the
        tight entries popped out, silently changing traversal order and
        counters with the compaction threshold.
        """
        heap = self._heap
        if not self.filter_enabled or len(heap) < _COMPACT_MIN:
            return
        bound = self._inherited
        keep = [item for item in heap if item[0] <= bound]
        dropped = len(heap) - len(keep)
        if dropped > len(heap) // 2:
            self.stats.lpq_filter_discards += dropped
            kept_seqs = {item[1] for item in keep}
            self._live = {s: v for s, v in self._live.items() if s in kept_seqs}
            self._live_dirty = True
            heapq.heapify(keep)
            self._heap = keep


def make_node_lpq(
    owner_rect: Rect,
    owner_node_id: int,
    inherited_bound: float,
    stats: QueryStats,
    need_count: int = 1,
    filter_enabled: bool = True,
    counts_valid: bool = False,
) -> LPQ:
    """LPQ owned by an internal/leaf node entry of ``IR``."""
    return LPQ(
        NODE,
        owner_rect,
        inherited_bound,
        stats,
        owner_node_id=owner_node_id,
        need_count=need_count,
        filter_enabled=filter_enabled,
        counts_valid=counts_valid,
    )


def make_object_lpq(
    owner_point: np.ndarray,
    owner_id: int,
    inherited_bound: float,
    stats: QueryStats,
    need_count: int = 1,
    filter_enabled: bool = True,
    counts_valid: bool = False,
) -> LPQ:
    """LPQ owned by a data object of ``R``."""
    point = np.asarray(owner_point, dtype=np.float64)
    return LPQ(
        OBJECT,
        Rect(point, point.copy()),
        inherited_bound,
        stats,
        owner_id=owner_id,
        owner_point=point,
        need_count=need_count,
        filter_enabled=filter_enabled,
        counts_valid=counts_valid,
    )


def batch_bounds_rows(
    maxd_mat: np.ndarray,
    counts: np.ndarray | None,
    need: int,
    counts_valid: bool,
    lpq_bounds: np.ndarray,
) -> np.ndarray:
    """Vectorised :meth:`LPQ.batch_bound` for many LPQs at once.

    ``maxd_mat`` has one row per LPQ (all probing the same candidate
    batch); ``lpq_bounds`` holds each LPQ's current bound.  Returns the
    post-batch bound per row.  This is the hot path of bi-directional
    expansion: one call replaces a per-child-LPQ Python loop.
    """
    n = maxd_mat.shape[1]
    if n == 0:
        return lpq_bounds
    if need == 1:
        return np.minimum(lpq_bounds, maxd_mat.min(axis=1))
    if counts is None or not counts_valid:
        if n < need:
            return lpq_bounds
        kth = np.partition(maxd_mat, need - 1, axis=1)[:, need - 1]
        return np.minimum(lpq_bounds, kth)
    order = np.argsort(maxd_mat, axis=1, kind="stable")
    cum = np.cumsum(counts[order], axis=1)
    reached = cum >= need
    has = reached.any(axis=1)
    first = np.argmax(reached, axis=1)
    rows = np.arange(maxd_mat.shape[0])
    kth = maxd_mat[rows, order[rows, first]]
    return np.where(has, np.minimum(lpq_bounds, kth), lpq_bounds)
