"""Command-line interface: ``python -m repro <command>``.

These commands cover the common workflows without writing any code:

* ``datasets`` — generate and describe the Table 2 workloads.
* ``join`` — run one ANN/AkNN method (dispatched through
  :data:`repro.join.registry.REGISTRY`) on a generated workload and
  print the result summary plus cost counters.  ``--workers N`` shards
  the MBA/RBA join across N worker processes (exact, same result);
  ``--node-cache E`` layers an E-entry decoded-node cache above the
  buffer pool; ``--trace out.json`` writes the schema-validated trace
  artifact (bit-identical results, per-stage/per-layer attribution).
* ``experiment`` — regenerate one of the paper's figures
  (``--trace`` records a span per measured method run).
* ``parallel-bench`` — sweep worker counts and write the
  ``BENCH_parallel.json`` scaling artifact.
* ``kernel-bench`` — microbenchmark the core kernels (LPQ push/pop,
  cross metrics, end-to-end ``mba_join``) and write ``BENCH_core.json``.
* ``serve`` — run the online micro-batching ANN query service
  (:mod:`repro.service`) over a generated dataset; ``--once`` does a
  single self-query round trip (the CI smoke).  ``--replicas N`` serves
  from N mapped-epoch replica processes behind the asyncio front-end
  (:mod:`repro.serve`) instead — the multi-process CI smoke.
* ``service-bench`` — closed-loop micro-batching sweep (throughput and
  latency quantiles vs. coalescing window) writing ``BENCH_service.json``
  with an open-loop Poisson-arrival section; ``--processes 1 2 4`` adds
  the multi-process replica-scaling section.
* ``update-bench`` — query latency under a sustained insert/delete
  stream with epoch compactions, every hot swap verified against a
  scratch-rebuilt index; writes ``BENCH_updates.json``.
* ``trace-report`` — summarize a trace artifact as stage/layer
  attribution tables (service traces add a service-counter section).

Examples::

    python -m repro datasets --scale 0.01
    python -m repro join --method mba --dataset tac -n 5000 -k 3
    python -m repro join --method mba --dataset gaussian -n 5000 --workers 4
    python -m repro join --method mba --dataset tac -n 5000 --trace t.json
    python -m repro trace-report t.json
    python -m repro experiment fig4
    python -m repro parallel-bench --workers 1 2 4 --out BENCH_parallel.json
    python -m repro kernel-bench --smoke --out BENCH_core.json

Every ``join`` run is validated through the same
:class:`repro.config.JoinConfig` the Python API uses, so flag validation
and API validation cannot drift.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext

import numpy as np

from . import bench
from .config import JoinConfig
from .core.stats import QueryStats
from .data import gstd
from .data.datasets import fc_surrogate, table2_datasets, tac_surrogate
from .join.registry import get_method, method_names, run_join
from .obs import TraceSession, format_trace_report, load_trace, use_tracer
from .storage.manager import StorageManager

__all__ = ["main"]

_EXPERIMENTS = {
    "fig3a": (bench.fig3a_tac_methods, "Figure 3(a) — TAC, ANN methods"),
    "fig3b": (bench.fig3b_bufferpool, "Figure 3(b) — FC 10D, pool sweep"),
    "fig4": (bench.fig4_dimensionality, "Figure 4 — dimensionality sweep"),
    "fig5": (bench.fig5_aknn_tac, "Figure 5 — AkNN on TAC"),
    "fig6": (bench.fig6_aknn_fc, "Figure 6 — AkNN on FC"),
    "traversal": (bench.ablation_traversal_variants, "Traversal variants"),
    "filter": (bench.ablation_filter_stage, "Filter Stage ablation"),
    "countbound": (bench.ablation_count_bound, "Count-aware AkNN bound"),
}


def _make_dataset(name: str, n: int, dims: int, seed: int) -> np.ndarray:
    if name == "tac":
        return tac_surrogate(n, seed=seed)
    if name == "fc":
        return fc_surrogate(n, seed=seed)
    if name in gstd.DISTRIBUTIONS:
        return gstd.generate(n, dims, name, seed=seed)
    raise SystemExit(
        f"unknown dataset {name!r}: choose tac, fc, or one of {sorted(gstd.DISTRIBUTIONS)}"
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    data = table2_datasets(scale=args.scale)
    print(f"Table 2 datasets at scale {args.scale}:")
    for name, pts in data.items():
        spans = pts.max(axis=0) - pts.min(axis=0)
        print(
            f"  {name:8s} n={len(pts):>8,}  D={pts.shape[1]:>2}  "
            f"extent span ratio={spans.max() / max(spans.min(), 1e-12):.1f}"
        )
    return 0


def _join_config(args: argparse.Namespace) -> JoinConfig:
    """One validated :class:`JoinConfig` out of the ``join`` flags.

    Validation errors surface as ``SystemExit`` with the flag spelled the
    way the user typed it.
    """
    method = get_method(args.method)
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1 and not method.supports_workers:
        raise SystemExit(
            f"--workers applies only to the sharded MBA/RBA executor, not {args.method!r}"
        )
    if args.node_cache < 0:
        raise SystemExit(f"--node-cache must be >= 0, got {args.node_cache}")
    try:
        return JoinConfig(
            kind=method.index_kind if method.index_kind is not None else "mbrqt",
            metric=args.metric,
            k=args.k,
            exclude_self=True,
            workers=args.workers,
            node_cache_entries=args.node_cache,
            trace=args.trace,
        )
    except (TypeError, ValueError) as exc:
        raise SystemExit(str(exc)) from None


def _cmd_join(args: argparse.Namespace) -> int:
    points = _make_dataset(args.dataset, args.n, args.dims, args.seed)
    cfg = _join_config(args)
    storage = StorageManager.with_pool_bytes(
        args.pool_kb * 1024, args.page_size, node_cache_entries=args.node_cache
    )
    session = TraceSession(cfg.trace)
    outcome = run_join(
        args.method, points, storage, cfg, exclude_self=True, tracer=session.tracer
    )
    result, stats = outcome.result, outcome.stats
    session.finalize(
        meta={
            **cfg.describe(),
            "command": "join",
            "method": args.method,
            "dataset": args.dataset,
            "n": args.n,
            "seed": args.seed,
        },
        totals=stats.as_dict(),
    )

    print(f"{args.method.upper()} self-{'ANN' if args.k == 1 else f'A{args.k}NN'} "
          f"on {args.dataset} (n={args.n:,})")
    if args.workers > 1 and outcome.reports is not None:
        reports = outcome.reports
        shard_pts = ", ".join(f"{r.points:,}" for r in reports)
        print(f"  workers          : {args.workers} ({len(reports)} shards; points {shard_pts})")
    print(f"  index build      : {outcome.build_s:.2f}s")
    print(f"  query CPU        : {outcome.query_s:.2f}s")
    print(f"  simulated I/O    : {stats.io_time_s:.2f}s ({stats.page_misses:,} misses)")
    print(f"  distance evals   : {stats.distance_evaluations:,}")
    print(f"  node expansions  : {stats.node_expansions:,}")
    print(f"  result pairs     : {result.pair_count():,}")
    print(f"  total distance   : {result.total_distance():.4f} (checksum)")
    if args.trace is not None:
        print(f"  trace            : wrote {args.trace}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    entry = _EXPERIMENTS.get(args.name)
    if entry is None:
        raise SystemExit(f"unknown experiment {args.name!r}: choose from {sorted(_EXPERIMENTS)}")
    fn, title = entry
    session = TraceSession(args.trace)
    if session.tracer is not None:
        # The benchmark harness consults the ambient tracer, so every
        # measured method run becomes a span without threading a tracer
        # through the figure functions.
        with use_tracer(session.tracer):
            runs = fn()
    else:
        runs = fn()
    totals = QueryStats()
    for r in runs:
        totals.merge(r.stats)
    session.finalize(
        meta={"command": "experiment", "experiment": args.name, "title": title},
        totals=totals.as_dict(),
    )
    extra = sorted({key for r in runs for key in r.params})
    print(bench.format_table(title, runs, extra_cols=extra))
    if args.trace is not None:
        print(f"\nwrote trace {args.trace}")
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    try:
        doc = load_trace(args.path)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {args.path!r}: {exc}") from None
    except ValueError as exc:
        raise SystemExit(f"invalid trace {args.path!r}: {exc}") from None
    print(format_trace_report(doc))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis.analyzer import ANALYZER_RULES, analyze_project
    from .analysis.baseline import diff_against_baseline, load_baseline, save_baseline
    from .analysis.output import render

    if args.list_rules:
        width = max(len(rule_id) for rule_id in ANALYZER_RULES)
        for rule_id in sorted(ANALYZER_RULES):
            print(f"{rule_id:<{width}}  {ANALYZER_RULES[rule_id]}")
        return 0

    root = Path(args.root) if args.root is not None else Path(__file__).resolve().parent
    diagnostics = analyze_project(root, display_base=root.parent)
    if args.write_baseline:
        save_baseline(args.baseline, diagnostics)
        n = len(diagnostics)
        print(f"wrote baseline {args.baseline} ({n} entr{'y' if n == 1 else 'ies'})")
        return 0

    report = render(args.fmt, diagnostics, tool="repro.analyze", rule_summaries=ANALYZER_RULES)
    if args.out:
        Path(args.out).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)

    try:
        baseline = load_baseline(args.baseline)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    new, stale = diff_against_baseline(diagnostics, baseline)
    if new:
        n = len(new)
        print(f"analyze: {n} new finding{'s' if n != 1 else ''}", file=sys.stderr)
    for fp in sorted(stale):
        print(f"analyze: stale baseline entry (fixed? remove it): {fp}", file=sys.stderr)
    return 1 if new or stale else 0


def _cmd_parallel_bench(args: argparse.Namespace) -> int:
    if args.dataset not in gstd.DISTRIBUTIONS:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}: choose one of {sorted(gstd.DISTRIBUTIONS)}"
        )
    cfg = bench.BenchConfig.from_env()
    if args.seed is not None:
        cfg.seed = args.seed
    if args.page_size is not None:
        cfg.page_size = args.page_size
    if args.pool_kb is not None:
        cfg.pool_bytes = args.pool_kb * 1024
    out = None if args.out == "-" else args.out
    session = TraceSession(args.trace)
    with use_tracer(session.tracer) if session.tracer is not None else nullcontext():
        report = bench.parallel_scaling(
            cfg,
            worker_counts=tuple(args.workers),
            kind=args.kind,
            distribution=args.dataset,
            n=args.n,
            dims=args.dims,
            k=args.k,
            out_path=out,
        )
    session.finalize(
        meta={"command": "parallel-bench", "dataset": args.dataset, "kind": args.kind}
    )
    print(bench.format_parallel_report(report))
    if out is not None:
        print(f"\nwrote {out}")
    if args.trace is not None:
        print(f"wrote trace {args.trace}")
    return 0


def _cmd_serve_cluster(args: argparse.Namespace, points: np.ndarray) -> int:
    """``serve --replicas N``: the multi-process topology (repro.serve).

    Spawns N mapped-epoch replica processes behind the asyncio
    front-end, pushes the probe queries through least-loaded routing,
    and (with ``--once``) asserts the self-query round trip — the CI
    multi-process smoke.
    """
    import asyncio
    import tempfile

    from .serve import Frontend, ReplicaCluster, ServeConfig
    from .service import ServiceConfig

    try:
        cfg = ServeConfig(
            replicas=args.replicas,
            cache_slots=args.cache_slots,
            max_batch=args.max_batch,
            deadline_ms=args.deadline_ms,
            trace=args.trace,
            service=ServiceConfig(
                max_batch=args.max_batch,
                max_delay_ms=args.max_delay_ms,
                queue_capacity=args.queue_capacity,
                cold_flush=False,
            ),
        )
    except (TypeError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    n_requests = 1 if args.once else args.requests
    if n_requests < 1:
        raise SystemExit(f"--requests must be >= 1, got {n_requests}")
    rng = np.random.default_rng(args.seed + 1)
    queries = points[rng.integers(0, len(points), size=n_requests)]

    async def run() -> tuple[list, dict]:
        frontend = Frontend(cluster)
        await frontend.start()
        try:
            answers = list(
                await asyncio.gather(
                    *(frontend.submit(q, k=args.k, client="cli") for q in queries)
                )
            )
        finally:
            sections = await frontend.drain()
        return answers, sections

    with tempfile.TemporaryDirectory() as tmp:
        cluster = ReplicaCluster(points, cfg, tmp)
        try:
            answers, sections = asyncio.run(run())
        finally:
            cluster.close()

    service = sections["service"]
    exact = sum(1 for a in answers if not a.approximate)
    print(f"serve — {args.dataset} (n={args.n:,}, D={points.shape[1]}), "
          f"{n_requests} self-quer{'y' if n_requests == 1 else 'ies'}, "
          f"k={args.k}, {args.replicas} replica processes")
    print(f"  answered         : {int(service['answered'])} ({exact} exact, "
          f"{len(answers) - exact} degraded)")
    print(f"  batches          : {int(service['batches'])} across "
          f"{len(sections['replica'])} replicas")
    print(f"  shed             : quota {int(service['shed_quota'])}, "
          f"overload {int(service['shed_overload'])}, "
          f"deadline {int(service['shed_deadline'])}")
    if args.once:
        answer = answers[0]
        print(f"  self-query answer: ids={list(answer.neighbor_ids)} "
              f"dists={[f'{d:.6f}' for d in answer.distances]}")
        if answer.distances and answer.distances[0] == 0.0:
            print("  round-trip       : OK (nearest neighbour is the query point)")
        else:
            raise SystemExit("self-query round trip failed: expected distance 0.0")
    if args.trace is not None:
        print(f"  trace            : wrote {args.trace}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import AnnService, ServiceConfig

    points = _make_dataset(args.dataset, args.n, args.dims, args.seed)
    if args.replicas < 1:
        raise SystemExit(f"--replicas must be >= 1, got {args.replicas}")
    if args.replicas > 1:
        if args.workers != 1:
            raise SystemExit("--workers shards a single service; with --replicas "
                             "the replica processes are the parallelism")
        if args.frontier_flush:
            raise SystemExit("--frontier-flush applies to the single-process "
                             "service, not --replicas")
        return _cmd_serve_cluster(args, points)
    if args.cache_slots:
        raise SystemExit("--cache-slots is the shared cross-process cache; "
                         "it requires --replicas >= 2")
    try:
        cfg = ServiceConfig(
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            queue_capacity=args.queue_capacity,
            deadline_ms=args.deadline_ms,
            workers=args.workers,
            frontier_flush=args.frontier_flush,
            trace=args.trace,
        )
    except (TypeError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    n_requests = 1 if args.once else args.requests
    if n_requests < 1:
        raise SystemExit(f"--requests must be >= 1, got {n_requests}")
    rng = np.random.default_rng(args.seed + 1)
    queries = points[rng.integers(0, len(points), size=n_requests)]

    service = AnnService(points, cfg)
    with service.serving():
        tickets = [service.submit(q, k=args.k) for q in queries]
        answers = [t.result(timeout_s=60.0) for t in tickets]
    exact = sum(1 for a in answers if not a.approximate)
    print(f"serve — {args.dataset} (n={args.n:,}, D={points.shape[1]}), "
          f"{n_requests} self-quer{'y' if n_requests == 1 else 'ies'}, k={args.k}")
    print(f"  answered         : {len(answers)} ({exact} exact, "
          f"{len(answers) - exact} degraded)")
    print(f"  batches          : {service.counters.batches} "
          f"(singleton {service.counters.singleton_flushes}, "
          f"batched {service.counters.batched_flushes}, "
          f"sharded {service.counters.sharded_flushes})")
    print(f"  max queue length : {service.counters.max_queue_len} "
          f"(capacity {cfg.queue_capacity})")
    if args.once:
        answer = answers[0]
        print(f"  self-query answer: ids={list(answer.neighbor_ids)} "
              f"dists={[f'{d:.6f}' for d in answer.distances]}")
        # A self-query's nearest neighbour is the point itself at
        # distance zero — the one-shot smoke asserts the round trip.
        if answer.distances and answer.distances[0] == 0.0:
            print("  round-trip       : OK (nearest neighbour is the query point)")
        else:
            raise SystemExit("self-query round trip failed: expected distance 0.0")
    if args.trace is not None:
        print(f"  trace            : wrote {args.trace}")
    return 0


def _cmd_service_bench(args: argparse.Namespace) -> int:
    out = None if args.out == "-" else args.out
    try:
        doc = bench.run_service_bench(
            windows=tuple(args.windows),
            clients=args.clients,
            n_target=args.n,
            n_requests=args.requests,
            dims=args.dims,
            k=args.k,
            kind=args.kind,
            seed=args.seed,
            smoke=args.smoke,
            processes=tuple(args.processes) if args.processes else None,
            out_path=out,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(bench.format_service_report(doc))
    if out is not None:
        print(f"\nwrote {out}")
    return 0


def _cmd_update_bench(args: argparse.Namespace) -> int:
    out = None if args.out == "-" else args.out
    try:
        doc = bench.run_update_bench(
            kinds=tuple(args.kinds),
            n_target=args.n,
            rounds=args.rounds,
            updates_per_round=args.updates,
            queries_per_round=args.queries,
            compact_threshold=args.compact_threshold,
            dims=args.dims,
            k=args.k,
            seed=args.seed,
            smoke=args.smoke,
            out_path=out,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(bench.format_update_report(doc))
    if out is not None:
        print(f"\nwrote {out}")
    return 0


def _cmd_kernel_bench(args: argparse.Namespace) -> int:
    out = None if args.out == "-" else args.out
    session = TraceSession(args.trace)
    with use_tracer(session.tracer) if session.tracer is not None else nullcontext():
        report = bench.kernel_bench(smoke=args.smoke, seed=args.seed, out_path=out)
    session.finalize(meta={"command": "kernel-bench", "smoke": args.smoke})
    print(bench.format_kernel_report(report))
    if out is not None:
        print(f"\nwrote {out}")
    if args.trace is not None:
        print(f"wrote trace {args.trace}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="All-Nearest-Neighbor query reproduction (Chen & Patel, ICDE 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="generate and describe the Table 2 workloads")
    p.add_argument("--scale", type=float, default=0.01, help="cardinality scale (1.0 = paper)")
    p.set_defaults(fn=_cmd_datasets)

    p = sub.add_parser("join", help="run one ANN/AkNN method on a generated workload")
    p.add_argument("--method", default="mba", choices=list(method_names()))
    p.add_argument("--dataset", default="tac",
                   help="tac, fc, uniform, gaussian, skewed, correlated")
    p.add_argument("-n", type=int, default=10_000, help="number of points")
    p.add_argument("--dims", type=int, default=2, help="dimensionality (synthetic only)")
    p.add_argument("-k", type=int, default=1, help="neighbours per point")
    p.add_argument("--metric", default="nxndist", choices=["nxndist", "maxmaxdist"])
    p.add_argument("--page-size", type=int, default=2048)
    p.add_argument("--pool-kb", type=int, default=512)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the sharded MBA/RBA executor")
    p.add_argument("--node-cache", type=int, default=0,
                   help="decoded-node cache entries above the buffer pool "
                        "(0 disables; sliced per worker when sharded)")
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="write the schema-validated JSON trace artifact here "
                        "(results are bit-identical with tracing on or off)")
    p.set_defaults(fn=_cmd_join)

    p = sub.add_parser("experiment", help="regenerate one of the paper's figures")
    p.add_argument("name", help=f"one of {sorted(_EXPERIMENTS)}")
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="write a JSON trace with one span per measured method run")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("trace-report", help="summarize a repro.trace JSON artifact")
    p.add_argument("path", help="trace file written by --trace or the trace= API")
    p.set_defaults(fn=_cmd_trace_report)

    p = sub.add_parser(
        "analyze",
        help="cross-module concurrency/purity/contract analysis of the package",
    )
    p.add_argument("--root", default=None, metavar="DIR",
                   help="package directory to analyze (default: the installed repro package)")
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                   dest="fmt", help="report format (default: text)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--baseline", default=".repro-analysis-baseline.json", metavar="FILE",
                   help="grandfathered-findings file gating the exit status")
    p.add_argument("--write-baseline", action="store_true",
                   help="write the current findings to --baseline and exit 0")
    p.add_argument("--list-rules", action="store_true",
                   help="print the analyzer rule catalogue and exit")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "parallel-bench",
        help="sweep worker counts and write the BENCH_parallel.json artifact",
    )
    p.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                   help="worker counts to sweep (first is the speedup baseline)")
    p.add_argument("--out", default="BENCH_parallel.json",
                   help="artifact path ('-' to skip writing)")
    p.add_argument("--dataset", default="gaussian",
                   help=f"one of {sorted(gstd.DISTRIBUTIONS)}")
    p.add_argument("-n", type=int, default=None,
                   help="number of points (default: bench config syn_n)")
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("-k", type=int, default=1)
    p.add_argument("--kind", default="mbrqt", choices=["mbrqt", "rstar"])
    p.add_argument("--seed", type=int, default=None,
                   help="dataset seed (default: bench config seed)")
    p.add_argument("--page-size", type=int, default=None)
    p.add_argument("--pool-kb", type=int, default=None)
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="write a JSON trace with per-run and per-worker spans")
    p.set_defaults(fn=_cmd_parallel_bench)

    p = sub.add_parser(
        "serve",
        help="run the micro-batching ANN query service on a generated dataset",
    )
    p.add_argument("--dataset", default="uniform",
                   help="tac, fc, uniform, gaussian, skewed, correlated")
    p.add_argument("-n", type=int, default=2_000, help="target dataset size")
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("-k", type=int, default=1, help="neighbours per request")
    p.add_argument("--requests", type=int, default=64,
                   help="self-queries to push through the live service")
    p.add_argument("--once", action="store_true",
                   help="one self-query round trip, assert distance 0, exit "
                        "(the CI smoke)")
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--max-delay-ms", type=float, default=2.0)
    p.add_argument("--queue-capacity", type=int, default=1024)
    p.add_argument("--deadline-ms", type=float, default=None)
    p.add_argument("--workers", type=int, default=1,
                   help="worker threads for sharding large flushes")
    p.add_argument("--frontier-flush", action="store_true",
                   help="answer batched flushes with the level-synchronous "
                        "frontier engine (mba-frontier) instead of recursive MBA")
    p.add_argument("--replicas", type=int, default=1,
                   help="serve from N mapped-epoch replica processes behind "
                        "the asyncio front-end (repro.serve) instead of the "
                        "single-process service")
    p.add_argument("--cache-slots", type=int, default=0,
                   help="shared cross-process decoded-node cache slots "
                        "(requires --replicas >= 2; 0 disables)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="write the service trace artifact (per-batch spans, "
                        "service counter section) on close")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "service-bench",
        help="closed-loop micro-batching sweep; writes BENCH_service.json",
    )
    p.add_argument("--windows", type=int, nargs="+", default=[1, 2, 8, 32],
                   help="max_batch values to sweep (first must be the "
                        "one-at-a-time baseline, 1)")
    p.add_argument("--clients", type=int, default=32,
                   help="closed-loop clients (each keeps one request in flight)")
    p.add_argument("-n", type=int, default=2_000, help="target dataset size")
    p.add_argument("--requests", type=int, default=256,
                   help="total requests per swept window")
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("-k", type=int, default=1)
    p.add_argument("--kind", default="mbrqt", choices=["mbrqt", "rstar"])
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--smoke", action="store_true",
                   help="seconds-long CI configuration (same code paths)")
    p.add_argument("--processes", type=int, nargs="+", default=None,
                   help="also sweep replica counts against the multi-process "
                        "serving cluster (first must be the 1-replica "
                        "baseline); adds the 'multiprocess' artifact section")
    p.add_argument("--out", default="BENCH_service.json",
                   help="artifact path ('-' to skip writing)")
    p.set_defaults(fn=_cmd_service_bench)

    p = sub.add_parser(
        "update-bench",
        help="query latency + epoch-boundary verification under a sustained "
             "insert/delete stream; writes BENCH_updates.json",
    )
    p.add_argument("--kinds", nargs="+", default=["mbrqt", "rstar"],
                   choices=["mbrqt", "rstar"],
                   help="index kinds to stream updates against")
    p.add_argument("-n", type=int, default=1_000, help="initial dataset size")
    p.add_argument("--rounds", type=int, default=10,
                   help="update/query rounds to run")
    p.add_argument("--updates", type=int, default=24,
                   help="interleaved inserts/deletes per round")
    p.add_argument("--queries", type=int, default=16,
                   help="coalesced queries measured per round")
    p.add_argument("--compact-threshold", type=int, default=32,
                   help="pending delta ops that trigger an epoch compaction")
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("-k", type=int, default=3)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--smoke", action="store_true",
                   help="seconds-long CI configuration (same code paths)")
    p.add_argument("--out", default="BENCH_updates.json",
                   help="artifact path ('-' to skip writing)")
    p.set_defaults(fn=_cmd_update_bench)

    p = sub.add_parser(
        "kernel-bench",
        help="microbenchmark the core kernels and write BENCH_core.json",
    )
    p.add_argument("--smoke", action="store_true",
                   help="seconds-long CI configuration (same code paths)")
    p.add_argument("--out", default="BENCH_core.json",
                   help="artifact path ('-' to skip writing)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="write a JSON trace of the end-to-end runs")
    p.set_defaults(fn=_cmd_kernel_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse ``argv`` (default ``sys.argv[1:]``) and run the chosen command."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
