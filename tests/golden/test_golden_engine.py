"""Golden-engine replay: the columnar engine must be bit-identical.

``mba_golden.json`` was recorded from the tuple-heap LPQ engine
immediately before the columnar rewrite (see ``record.py``).  Every
config is replayed here and compared field by field:

* ``pairs_sha`` — SHA-256 over the full result stream (pairs *and*
  distance reprs): the answer, bit for bit.
* ``pop_sha`` / ``pop_count`` — SHA-256 over every ``LPQ.pop`` event
  (owner, entry, mind/maxd reprs): the traversal *order*, bit for bit.
* exact counters — node_expansions, lpq_enqueues, lpq_filter_discards,
  pruned_entries, result_pairs: the work done.
* ``distance_evaluations`` — compared as an upper bound, because the
  Gather Stage now skips scoring the pruning metric on rows its MIND
  already excludes (a strict reduction, never a change in behaviour).
"""

import json
from pathlib import Path

import pytest

from repro.obs.tracer import Tracer

from .harness import CONFIGS, EXACT_COUNTERS, config_id, dataset_points, run_config

FIXTURE = Path(__file__).with_name("mba_golden.json")

GOLDEN = json.loads(FIXTURE.read_text())
_BY_ID = {record["config"]: record for record in GOLDEN["records"]}


@pytest.fixture(scope="module")
def points():
    return dataset_points()


@pytest.mark.parametrize("cfg", CONFIGS, ids=config_id)
def test_engine_matches_golden(points, cfg):
    record = _BY_ID[config_id(cfg)]
    got = run_config(points, cfg)
    assert got["pairs_sha"] == record["pairs_sha"], "result stream changed"
    assert got["pair_count"] == record["pair_count"]
    assert got["total_distance"] == record["total_distance"]
    if "pop_sha" in record:
        assert got["pop_count"] == record["pop_count"], "pop event count changed"
        assert got["pop_sha"] == record["pop_sha"], "pop order changed"
    for counter in EXACT_COUNTERS:
        assert got["counters"][counter] == record["counters"][counter], (
            f"{counter} changed"
        )
    assert got["distance_evaluations"] <= record["distance_evaluations"], (
        "the engine may only ever evaluate fewer distances than the "
        "recorded reference"
    )


def test_cache_enabled_run_matches_golden(points):
    """The decoded-node cache changes I/O accounting, never the traversal:
    a cache-enabled run must replay the cache-off fixture exactly."""
    cfg = next(c for c in CONFIGS if c["workers"] == 1)
    record = _BY_ID[config_id(cfg)]
    got = run_config(points, cfg, node_cache_entries=128)
    assert got["pairs_sha"] == record["pairs_sha"]
    assert got["pop_sha"] == record["pop_sha"]
    for counter in EXACT_COUNTERS:
        assert got["counters"][counter] == record["counters"][counter]


@pytest.mark.parametrize("cfg", CONFIGS, ids=config_id)
def test_traced_run_matches_golden(points, cfg):
    """Tracing must be observationally invisible: a run with a live
    Tracer replays the untraced fixture bit for bit — the same result
    stream, the same pop order, the same exact counters."""
    record = _BY_ID[config_id(cfg)]
    tracer = Tracer()
    with tracer.span("golden-replay", config=config_id(cfg)):
        got = run_config(points, cfg, trace=tracer)
    assert got["pairs_sha"] == record["pairs_sha"], "tracing changed the result stream"
    assert got["pair_count"] == record["pair_count"]
    assert got["total_distance"] == record["total_distance"]
    if "pop_sha" in record:
        assert got["pop_count"] == record["pop_count"], "tracing changed pop events"
        assert got["pop_sha"] == record["pop_sha"], "tracing changed pop order"
    for counter in EXACT_COUNTERS:
        assert got["counters"][counter] == record["counters"][counter], (
            f"tracing changed {counter}"
        )
    # The tracer actually observed the traversal (not a silent no-op).
    doc = tracer.finish(meta={"test": "golden-traced"})
    replay = doc["root"]["children"][0]
    stage_calls = sum(s["calls"] for s in replay["stages"].values())
    child_stage_calls = sum(
        s["calls"] for c in replay["children"] for s in c["stages"].values()
    )
    assert stage_calls + child_stage_calls > 0
