"""The sustained-update benchmark: artifact schema and hard guarantees."""

import json

import pytest

from repro.bench.updates import SCHEMA, format_update_report, run_update_bench

TINY = dict(
    n_target=120,
    rounds=3,
    updates_per_round=10,
    queries_per_round=4,
    compact_threshold=8,
    k=2,
)


@pytest.fixture(scope="module")
def doc():
    """One tiny two-kind run shared by the artifact assertions."""
    return run_update_bench(**TINY)


class TestArtifact:
    def test_schema_envelope(self, doc):
        assert doc["schema"] == SCHEMA
        assert doc["workload"]["compact_threshold"] == 8
        assert doc["workload"]["updates_per_round"] == 10
        assert [run["kind"] for run in doc["runs"]] == ["mbrqt", "rstar"]

    def test_run_rows_complete(self, doc):
        for run in doc["runs"]:
            assert {"kind", "epochs", "boundary_checks", "final_size",
                    "flushes", "latency_s", "counters", "service"} <= run.keys()
            lat = run["latency_s"]
            assert {"mean", "p50", "p95", "p99"} == lat.keys()
            assert lat["p50"] <= lat["p95"] <= lat["p99"]

    def test_compactions_actually_happened(self, doc):
        # 30 updates against an 8-op threshold must hot-swap epochs, and
        # every swap must have been probe-verified.
        for run in doc["runs"]:
            assert run["epochs"] >= 2
            assert run["boundary_checks"] >= 4 * run["epochs"]
            assert run["service"]["compactions"] == run["epochs"]

    def test_zero_lost_requests(self, doc):
        for run in doc["runs"]:
            service = run["service"]
            assert service["rejected"] == 0.0
            assert service["cancelled"] == 0.0
            assert service["answered"] == service["submitted"]

    def test_final_size_tracks_survivors(self, doc):
        # Starting population ± at most the number of update operations.
        for run in doc["runs"]:
            assert abs(run["final_size"] - TINY["n_target"]) <= 30

    def test_deterministic(self, doc):
        # Everything on the modeled clock is reproducible bit-for-bit;
        # only the measured cpu_time_s / busy_s counters may wiggle.
        def modeled(document):
            return [
                {k: v for k, v in run.items() if k not in ("counters", "service")}
                | {"io_time_s": run["counters"]["io_time_s"]}
                for run in document["runs"]
            ]

        again = run_update_bench(**TINY)
        assert modeled(again) == modeled(doc)

    def test_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_updates.json"
        doc = run_update_bench(
            kinds=("mbrqt",),
            n_target=80,
            rounds=2,
            updates_per_round=6,
            queries_per_round=3,
            compact_threshold=6,
            out_path=out,
        )
        assert json.loads(out.read_text()) == doc

    def test_report_renders(self, doc):
        text = format_update_report(doc)
        assert "mbrqt" in text and "rstar" in text
        assert "epochs" in text and "p95_ms" in text
        assert "probe-verified" in text
