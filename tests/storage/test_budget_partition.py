"""Property tests for the per-worker budget partition (satellite fix).

The sharded executor reopens the snapshot once per worker; each reopen
slices the serial pool/cache budgets with ``worker_pool_pages`` and
``worker_node_cache_entries``.  The contract under test: the aggregate
across all workers never exceeds the serial budget (the old
``max(1, budget // n)`` floor let ``n_workers > budget`` silently
multiply cache memory), with the single documented exception that a
BufferPool cannot hold zero pages.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage.manager import worker_node_cache_entries, worker_pool_pages

budgets = st.integers(0, 512)
worker_counts = st.integers(1, 32)


class TestNodeCachePartition:
    @given(budgets, worker_counts)
    def test_shares_sum_exactly_to_budget(self, entries, n):
        shares = [worker_node_cache_entries(entries, n, i) for i in range(n)]
        assert sum(shares) == max(0, entries)

    @given(budgets, worker_counts)
    def test_shares_are_fair_and_monotone(self, entries, n):
        shares = [worker_node_cache_entries(entries, n, i) for i in range(n)]
        assert all(s >= 0 for s in shares)
        assert max(shares) - min(shares) <= 1
        # Remainder entries go to the lowest-indexed workers.
        assert shares == sorted(shares, reverse=True)

    @given(st.integers(-16, 0), worker_counts)
    def test_cacheless_parent_yields_zero_everywhere(self, entries, n):
        assert all(
            worker_node_cache_entries(entries, n, i) == 0 for i in range(n)
        )


class TestPoolPartition:
    @given(st.integers(1, 512), worker_counts)
    def test_aggregate_never_exceeds_serial_unless_floored(self, pool, n):
        shares = [worker_pool_pages(pool, n, i) for i in range(n)]
        assert all(s >= 1 for s in shares)  # BufferPool needs >= 1 page
        if pool >= n:
            assert sum(shares) == pool
        else:
            # Degenerate case: the one-page floor is the only excess.
            assert sum(shares) == n

    @given(st.integers(1, 512), worker_counts)
    def test_pool_shares_fair(self, pool, n):
        shares = [worker_pool_pages(pool, n, i) for i in range(n)]
        assert max(shares) - min(shares) <= 1
