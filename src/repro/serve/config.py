"""One validated, frozen configuration object for the serving tier.

:class:`ServeConfig` mirrors the :class:`~repro.service.config.
ServiceConfig` pattern one layer up: the engine-side knobs live in an
*embedded* ``ServiceConfig`` (validated by it, shared with the
single-process service), and the serve-side knobs cover the topology
and the admission policy of the front-end:

* ``replicas`` — worker processes answering batches against the mapped
  epoch.  Scale-out happens here; each replica's engine runs
  single-worker (``service.workers`` must be 1 — a mapped epoch has no
  snapshot for sharded worker threads to re-reopen).
* ``cache_slots`` / ``cache_slot_bytes`` — geometry of the
  cross-process :class:`~repro.serve.shared_cache.SharedNodeCache`
  (0 slots disables the layer).
* ``max_batch`` — the dispatcher's micro-batch bound per replica send.
* ``admission_capacity`` — bound on requests admitted but not yet
  answered; submissions beyond it shed with
  :class:`~repro.service.queueing.Overloaded` *before* queueing.
* ``quota_rps`` / ``quota_burst`` — per-client token bucket (``None``
  disables quotas).
* ``deadline_ms`` — deadline-aware shedding: a request whose estimated
  queue wait already exceeds this is shed at admission rather than
  queued to miss its deadline quietly.
* ``drain_timeout_s`` — upper bound on the graceful-drain wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..obs.tracer import TraceDestination
from ..service.config import ServiceConfig
from .shared_cache import DEFAULT_SLOT_BYTES

__all__ = ["ServeConfig", "default_service_config"]


def default_service_config() -> ServiceConfig:
    """The engine-side defaults a serving replica wants.

    Unlike the benchmarking service, a serving replica keeps its caches
    warm across flushes (``cold_flush=False``): the measurement
    discipline of dropping the pool before every flush models a shared
    pool under unrelated traffic, which is exactly what a dedicated
    replica does *not* have.
    """
    return ServiceConfig(cold_flush=False)


@dataclass(frozen=True)
class ServeConfig:
    """Validated, immutable configuration for one serving cluster."""

    replicas: int = 2
    cache_slots: int = 0
    cache_slot_bytes: int = DEFAULT_SLOT_BYTES
    max_batch: int = 16
    admission_capacity: int = 256
    quota_rps: float | None = None
    quota_burst: int = 8
    deadline_ms: float | None = None
    drain_timeout_s: float = 10.0
    trace: TraceDestination = None
    service: ServiceConfig = field(default_factory=default_service_config)

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.cache_slots < 0:
            raise ValueError(f"cache_slots must be >= 0, got {self.cache_slots}")
        if self.cache_slots > 0 and self.cache_slot_bytes < 1:
            raise ValueError(
                f"cache_slot_bytes must be >= 1, got {self.cache_slot_bytes}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.admission_capacity < 1:
            raise ValueError(
                f"admission_capacity must be >= 1, got {self.admission_capacity}"
            )
        if self.quota_rps is not None and self.quota_rps <= 0:
            raise ValueError(
                f"quota_rps must be positive (or None), got {self.quota_rps}"
            )
        if self.quota_burst < 1:
            raise ValueError(f"quota_burst must be >= 1, got {self.quota_burst}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive (or None), got {self.deadline_ms}"
            )
        if self.drain_timeout_s <= 0:
            raise ValueError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}"
            )
        if self.service.workers != 1:
            raise ValueError(
                "replica engines are single-worker (mapped epochs have no "
                "snapshot for sharded threads); scale with replicas= instead "
                f"of service.workers={self.service.workers}"
            )

    def describe(self) -> dict[str, Any]:
        """Flat, JSON-friendly view (used for trace/bench ``meta``)."""
        return {
            "replicas": self.replicas,
            "cache_slots": self.cache_slots,
            "cache_slot_bytes": self.cache_slot_bytes,
            "max_batch": self.max_batch,
            "admission_capacity": self.admission_capacity,
            "quota_rps": self.quota_rps,
            "quota_burst": self.quota_burst,
            "deadline_ms": self.deadline_ms,
            "drain_timeout_s": self.drain_timeout_s,
            "service": self.service.describe(),
        }

    def replace(self, **changes: Any) -> "ServeConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)
