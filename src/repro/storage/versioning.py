"""Epoch/copy-on-write index versioning for zero-downtime hot swaps.

Every compaction builds a **fresh** base index in its own private
:class:`~repro.storage.manager.StorageManager`, snapshots it, and
publishes the read-only reopen as a new :class:`IndexVersion` — nothing
ever mutates pages an in-flight flush might be reading.  That makes the
swap a pointer move:

* readers :meth:`~VersionManager.pin` the current version at flush
  start and :meth:`~VersionManager.release` it when done, so a flush
  runs start-to-finish on one consistent epoch even if a compaction
  publishes mid-flush;
* :meth:`~VersionManager.publish` installs the new epoch for *future*
  pins and retires superseded epochs the moment their pin count drops
  to zero (copy-on-write at snapshot granularity — old pages live
  exactly as long as someone still reads them).

No reader ever blocks on a writer and no writer on a reader; the only
lock is the short critical section around the refcount table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    # Imported lazily: ``repro.index.base`` itself imports this package's
    # ``manager`` submodule mid-module, so an eager import here would make
    # ``import repro.index`` → ``repro.storage.__init__`` → this module →
    # the still-initialising ``repro.index.base`` a genuine cycle.
    from ..index.base import PagedIndex, PagedIndexSpec
    from .manager import StorageManager, StorageSnapshot

__all__ = ["IndexVersion", "VersionManager"]


@dataclass(frozen=True)
class IndexVersion:
    """One immutable published epoch of the base index.

    ``manager``/``index`` are the coordinator's own read-only reopen;
    worker threads re-reopen from ``snapshot``/``spec`` with their own
    budget slices, exactly like :mod:`repro.parallel` shards do.

    ``snapshot`` is ``None`` for *mapped* epochs (a replica process that
    attached a published epoch artifact via :mod:`repro.storage.mapped`
    rather than holding the page tuple in memory) — such versions serve
    single-worker flushes only, since there is no snapshot for sharded
    worker threads to re-reopen.
    """

    epoch: int
    snapshot: StorageSnapshot | None
    spec: PagedIndexSpec
    manager: StorageManager
    index: PagedIndex
    size: int
    """Number of points in this epoch's base index (0 for an empty base)."""


@dataclass
class _VersionSlot:
    version: IndexVersion
    pins: int = 0
    retired: bool = field(default=False)
    """Superseded by a newer publish; drop the slot once pins hit zero."""


class VersionManager:
    """Refcounted registry of published index epochs.

    Thread-safe: every mutation of the slot table happens under
    ``_lock``.  The pin/release protocol is strictly bracketed — callers
    use ``try/finally`` so a failing flush cannot leak a pin and wedge
    retirement forever.
    """

    def __init__(self, initial: IndexVersion) -> None:
        self._lock = threading.Lock()  # guards _slots and _current_epoch
        # guarded-by: _lock
        self._slots: dict[int, _VersionSlot] = {initial.epoch: _VersionSlot(initial)}
        # guarded-by: _lock
        self._current_epoch = initial.epoch

    @property
    def current(self) -> IndexVersion:
        """Peek at the live epoch without pinning (metadata reads only).

        The returned version may be retired by a concurrent publish at
        any moment — never run a query against an unpinned version.
        """
        with self._lock:
            return self._slots[self._current_epoch].version

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._current_epoch

    def pin(self) -> IndexVersion:
        """Acquire the current epoch for reading; pair with :meth:`release`."""
        with self._lock:
            slot = self._slots[self._current_epoch]
            slot.pins += 1
            return slot.version

    def release(self, version: IndexVersion) -> None:
        """Drop one pin; retired epochs are freed at zero pins."""
        with self._lock:
            slot = self._slots.get(version.epoch)
            if slot is None or slot.pins <= 0:
                raise ValueError(f"epoch {version.epoch} is not pinned")
            slot.pins -= 1
            if slot.retired and slot.pins == 0:
                del self._slots[version.epoch]

    def publish(self, version: IndexVersion) -> None:
        """Install a new epoch; supersedes (and maybe frees) the old one."""
        with self._lock:
            if version.epoch <= self._current_epoch:
                raise ValueError(
                    f"epoch must advance: {version.epoch} <= {self._current_epoch}"
                )
            old = self._slots[self._current_epoch]
            old.retired = True
            if old.pins == 0:
                del self._slots[old.version.epoch]
            self._slots[version.epoch] = _VersionSlot(version)
            self._current_epoch = version.epoch

    @property
    def live_epochs(self) -> tuple[int, ...]:
        """Epochs still materialised (current plus pinned-but-retired)."""
        with self._lock:
            return tuple(sorted(self._slots))
