"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Rect
from repro.storage.manager import StorageManager


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def storage():
    """Default storage manager (8 KB pages, 512 KB pool — the paper's)."""
    return StorageManager()


@pytest.fixture
def small_storage():
    """Small pages so tiny datasets still produce multi-level trees."""
    return StorageManager(page_size=512, pool_pages=64)


def random_rect(rng: np.random.Generator, dims: int, max_side: float = 0.5) -> Rect:
    lo = rng.random(dims)
    return Rect(lo, lo + rng.random(dims) * max_side)


def random_rect_pair(rng: np.random.Generator, dims: int) -> tuple[Rect, Rect]:
    return random_rect(rng, dims), random_rect(rng, dims)


def sample_points_in_rect(rng: np.random.Generator, rect: Rect, n: int) -> np.ndarray:
    """Uniform points inside ``rect`` (for empirical metric verification)."""
    return rect.lo + rng.random((n, rect.dims)) * (rect.hi - rect.lo)
