"""Schema for the ``repro.trace`` JSON artifact — declaration + validator.

The trace file is a contract between producers (the Python API, the CLI,
the benchmark commands, worker processes) and consumers (``python -m
repro trace-report``, CI artifact diffing, ad-hoc notebooks).  The
contract lives here twice, deliberately:

* :data:`TRACE_SCHEMA` — a JSON-Schema (draft-07 shaped) document, the
  machine-readable description published for external tooling.
* :func:`validate_trace` — a hand-rolled, zero-dependency validator that
  enforces exactly the same shape.  The container bakes in no
  ``jsonschema`` package and the library must stay dependency-free, so
  the validator is first-party code; the test suite keeps the two in
  lockstep (every constraint asserted by one is exercised against the
  other).

Validation errors carry a JSON-pointer-style path (``root.children[2].
stages.expand.calls``) so a malformed artifact names the offending node.
"""

from __future__ import annotations

from typing import Any

from .tracer import SCHEMA_NAME, SCHEMA_VERSION

__all__ = ["TRACE_SCHEMA", "TraceValidationError", "validate_trace"]


#: JSON-Schema description of the trace artifact (draft-07 dialect).
TRACE_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": SCHEMA_NAME,
    "type": "object",
    "required": ["schema", "version", "meta", "totals", "root"],
    "additionalProperties": False,
    "properties": {
        "schema": {"const": SCHEMA_NAME},
        "version": {"const": SCHEMA_VERSION},
        "meta": {
            "type": "object",
            "additionalProperties": {"type": ["string", "number", "boolean", "null"]},
        },
        "totals": {"type": "object", "additionalProperties": {"type": "number"}},
        "root": {"$ref": "#/definitions/span"},
        # Lifetime counters of an online service run (repro.service):
        # submissions, rejections, degradations, flush-mode breakdown.
        # Optional — offline traces omit the key entirely.
        "service": {"type": "object", "additionalProperties": {"type": "number"}},
        # Per-replica counters of a multi-process serving run
        # (repro.serve): batches, answered, sheds, swaps — one flat
        # counter map per replica name.  Optional, like ``service``.
        "replica": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "additionalProperties": {"type": "number"},
            },
        },
    },
    "definitions": {
        "span": {
            "type": "object",
            "required": ["name", "start_s", "duration_s", "attrs", "counters",
                         "stages", "children"],
            "additionalProperties": False,
            "properties": {
                "name": {"type": "string", "minLength": 1},
                "start_s": {"type": "number", "minimum": 0},
                "duration_s": {"type": "number", "minimum": 0},
                "attrs": {
                    "type": "object",
                    "additionalProperties": {
                        "type": ["string", "number", "boolean", "null"]
                    },
                },
                "counters": {"type": "object", "additionalProperties": {"type": "number"}},
                "stages": {
                    "type": "object",
                    "additionalProperties": {"$ref": "#/definitions/stage"},
                },
                "children": {"type": "array", "items": {"$ref": "#/definitions/span"}},
            },
        },
        "stage": {
            "type": "object",
            "required": ["calls", "time_s", "counters"],
            "additionalProperties": False,
            "properties": {
                "calls": {"type": "integer", "minimum": 0},
                "time_s": {"type": "number", "minimum": 0},
                "counters": {"type": "object", "additionalProperties": {"type": "number"}},
            },
        },
    },
}


class TraceValidationError(ValueError):
    """A trace document deviates from :data:`TRACE_SCHEMA`.

    ``path`` locates the offending node (dotted keys, ``[i]`` for list
    indices, ``$`` for the document root).
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


def _require_mapping(obj: object, path: str) -> dict[str, Any]:
    if not isinstance(obj, dict):
        raise TraceValidationError(path, f"expected object, got {type(obj).__name__}")
    for key in obj:
        if not isinstance(key, str):
            raise TraceValidationError(path, f"non-string key {key!r}")
    return obj


def _require_number(value: object, path: str, minimum: float | None = None) -> float:
    # bool is an int subclass; a counter of `true` is a bug, not a 1.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TraceValidationError(path, f"expected number, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise TraceValidationError(path, f"expected >= {minimum}, got {value}")
    return float(value)


def _check_scalar_map(obj: object, path: str) -> None:
    mapping = _require_mapping(obj, path)
    for key, value in mapping.items():
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise TraceValidationError(
                f"{path}.{key}", f"expected scalar, got {type(value).__name__}"
            )


def _check_counter_map(obj: object, path: str) -> None:
    mapping = _require_mapping(obj, path)
    for key, value in mapping.items():
        _require_number(value, f"{path}.{key}")


def _check_stage(obj: object, path: str) -> None:
    stage = _require_mapping(obj, path)
    missing = {"calls", "time_s", "counters"} - stage.keys()
    if missing:
        raise TraceValidationError(path, f"missing keys {sorted(missing)}")
    extra = stage.keys() - {"calls", "time_s", "counters"}
    if extra:
        raise TraceValidationError(path, f"unexpected keys {sorted(extra)}")
    calls = stage["calls"]
    if isinstance(calls, bool) or not isinstance(calls, int):
        raise TraceValidationError(f"{path}.calls", "expected integer")
    if calls < 0:
        raise TraceValidationError(f"{path}.calls", f"expected >= 0, got {calls}")
    _require_number(stage["time_s"], f"{path}.time_s", minimum=0.0)
    _check_counter_map(stage["counters"], f"{path}.counters")


_SPAN_KEYS = {"name", "start_s", "duration_s", "attrs", "counters", "stages", "children"}

_OPTIONAL_KEYS = {"service", "replica"}
"""Optional top-level keys.  Must mirror the non-required properties of
:data:`TRACE_SCHEMA` exactly — the lockstep test derives the expected
set from the schema document and fails if either side drifts."""


def _check_span(obj: object, path: str) -> None:
    span = _require_mapping(obj, path)
    missing = _SPAN_KEYS - span.keys()
    if missing:
        raise TraceValidationError(path, f"missing keys {sorted(missing)}")
    extra = span.keys() - _SPAN_KEYS
    if extra:
        raise TraceValidationError(path, f"unexpected keys {sorted(extra)}")
    name = span["name"]
    if not isinstance(name, str) or not name:
        raise TraceValidationError(f"{path}.name", "expected non-empty string")
    _require_number(span["start_s"], f"{path}.start_s", minimum=0.0)
    _require_number(span["duration_s"], f"{path}.duration_s", minimum=0.0)
    _check_scalar_map(span["attrs"], f"{path}.attrs")
    _check_counter_map(span["counters"], f"{path}.counters")
    stages = _require_mapping(span["stages"], f"{path}.stages")
    for stage_name, stage in stages.items():
        _check_stage(stage, f"{path}.stages.{stage_name}")
    children = span["children"]
    if not isinstance(children, list):
        raise TraceValidationError(f"{path}.children", "expected array")
    for i, child in enumerate(children):
        _check_span(child, f"{path}.children[{i}]")


def validate_trace(doc: object) -> dict[str, Any]:
    """Validate a trace document against :data:`TRACE_SCHEMA`.

    Returns the document (narrowed to ``dict``) on success; raises
    :class:`TraceValidationError` naming the first offending node
    otherwise.
    """
    root = _require_mapping(doc, "$")
    required = {"schema", "version", "meta", "totals", "root"}
    missing = required - root.keys()
    if missing:
        raise TraceValidationError("$", f"missing keys {sorted(missing)}")
    extra = root.keys() - required - _OPTIONAL_KEYS
    if extra:
        raise TraceValidationError("$", f"unexpected keys {sorted(extra)}")
    if root["schema"] != SCHEMA_NAME:
        raise TraceValidationError("$.schema", f"expected {SCHEMA_NAME!r}, got {root['schema']!r}")
    if root["version"] != SCHEMA_VERSION:
        raise TraceValidationError(
            "$.version", f"expected {SCHEMA_VERSION}, got {root['version']!r}"
        )
    _check_scalar_map(root["meta"], "$.meta")
    _check_counter_map(root["totals"], "$.totals")
    _check_span(root["root"], "$.root")
    if "service" in root:
        _check_counter_map(root["service"], "$.service")
    if "replica" in root:
        replicas = _require_mapping(root["replica"], "$.replica")
        for name, counters in replicas.items():
            _check_counter_map(counters, f"$.replica.{name}")
    return root
