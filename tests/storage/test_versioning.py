"""The epoch/COW version registry: pin/release/publish lifecycle."""

import threading

import pytest

from repro.storage.versioning import IndexVersion, VersionManager


def _version(epoch, size=0):
    # The registry only touches .epoch; the payload fields can be inert
    # stand-ins, which keeps these tests independent of storage details.
    return IndexVersion(
        epoch=epoch, snapshot=None, spec=None, manager=None, index=None, size=size
    )


class TestLifecycle:
    def test_initial_state(self):
        vm = VersionManager(_version(0, size=7))
        assert vm.epoch == 0
        assert vm.current.size == 7
        assert vm.live_epochs == (0,)

    def test_pin_release_roundtrip(self):
        vm = VersionManager(_version(0))
        v = vm.pin()
        assert v.epoch == 0
        vm.release(v)
        with pytest.raises(ValueError, match="not pinned"):
            vm.release(v)

    def test_publish_advances_and_frees_unpinned(self):
        vm = VersionManager(_version(0))
        vm.publish(_version(1))
        assert vm.epoch == 1
        assert vm.live_epochs == (1,)  # epoch 0 had no pins: freed at once

    def test_pinned_epoch_survives_publish_until_release(self):
        vm = VersionManager(_version(0))
        old = vm.pin()
        vm.publish(_version(1))
        # The in-flight reader keeps its epoch alive...
        assert vm.live_epochs == (0, 1)
        assert vm.pin().epoch == 1  # ...but new pins get the new one.
        vm.release(old)
        assert vm.live_epochs == (1,)

    def test_multiple_pins_freed_only_at_zero(self):
        vm = VersionManager(_version(0))
        a, b = vm.pin(), vm.pin()
        vm.publish(_version(1))
        vm.release(a)
        assert vm.live_epochs == (0, 1)
        vm.release(b)
        assert vm.live_epochs == (1,)

    def test_publish_must_advance_epoch(self):
        vm = VersionManager(_version(3))
        with pytest.raises(ValueError, match="must advance"):
            vm.publish(_version(3))
        with pytest.raises(ValueError, match="must advance"):
            vm.publish(_version(2))

    def test_epochs_may_skip(self):
        vm = VersionManager(_version(0))
        vm.publish(_version(5))
        assert vm.epoch == 5


class TestConcurrency:
    def test_concurrent_pin_release_against_publishes(self):
        vm = VersionManager(_version(0))
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    v = vm.pin()
                    try:
                        # A pinned version is always a published epoch.
                        assert v.epoch >= 0
                    finally:
                        vm.release(v)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for __ in range(4)]
        for t in threads:
            t.start()
        for epoch in range(1, 40):
            vm.publish(_version(epoch))
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        # Every retired epoch must eventually drain: only the current
        # epoch remains once all readers have released.
        assert vm.live_epochs == (39,)
