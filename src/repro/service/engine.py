"""Micro-batch execution core: one flush, one batched MBA traversal.

:class:`BatchEngine` owns the *target* side of the service: the dataset
is indexed once at startup, snapshotted, and reopened **read-only** —
the same discipline :mod:`repro.parallel` uses for worker processes, so
a long-lived service can never mutate the store it queries and every
flush accounts exactly for its own I/O.

Per flush, the engine packs the coalesced query points into a tiny
query-side MBRQT (built in a scratch manager, so its build/read I/O is
charged to the batch that needed it) and answers all of them with one
:func:`~repro.core.mba.mba_join` traversal — the paper's batching
thesis applied to an online arrival stream.  Three execution modes:

* ``singleton`` — a flush of one request skips the scratch index and
  runs plain incremental browsing (:func:`~repro.index.queries.
  nearest_iter`); micro-batching degrades gracefully to exactly the
  one-at-a-time baseline.
* ``batched`` — the default: scratch MBRQT + one MBA traversal.
* ``sharded`` — flushes of at least ``parallel_threshold`` requests
  with ``workers > 1`` split the scratch index into subtree shards
  (:func:`~repro.parallel.sharding.pack_shards`) and traverse them on
  worker threads, each against its own read-only reopen of both
  snapshots with a fair slice of the pool budget.

Past-deadline requests never ride the exact traversal: they get a
*budgeted browse* — ``nearest_iter`` abandoned after ``degrade_budget``
node expansions — returning the best candidates found so far, flagged
approximate, so one late request cannot stall the whole batch.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass
from typing import ContextManager, Sequence

import numpy as np

from ..core.geometry import Rect
from ..core.mba import mba_join
from ..core.result import NeighborResult
from ..core.stats import QueryStats
from ..index.base import PagedIndex, ShardRoot
from ..index.mbrqt import build_mbrqt
from ..index.queries import nearest_iter
from ..index.rstar import build_rstar
from ..obs.tracer import Tracer
from ..parallel.sharding import pack_shards, shard_seed_bound
from ..storage.manager import (
    StorageManager,
    worker_node_cache_entries,
    worker_pool_pages,
)
from .config import ServiceConfig
from .request import Request

__all__ = ["BatchEngine", "FlushOutcome", "RawAnswer"]

#: Pool budget of the per-flush scratch manager holding the query-side
#: index.  The scratch tree is tiny (max_batch points); a handful of
#: pages is plenty and keeps the batch's own memory footprint honest.
SCRATCH_POOL_PAGES = 8

#: ``request_id -> (neighbor_ids, distances, approximate)``.
RawAnswer = tuple[tuple[int, ...], tuple[float, ...], bool]


@dataclass(frozen=True)
class FlushOutcome:
    """What one flush produced: per-request answers plus attribution."""

    answers: dict[int, RawAnswer]
    stats: QueryStats
    mode: str
    """``"singleton"``, ``"batched"``, ``"sharded"``, or ``"degraded"``
    (every request in the flush was past deadline)."""
    n_exact: int
    n_degraded: int


class BatchEngine:
    """Answers flushed batches against a frozen, read-only target index."""

    def __init__(
        self,
        points: np.ndarray,
        config: ServiceConfig,
        point_ids: np.ndarray | None = None,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError(
                f"target dataset must be a non-empty (n, D) array, got shape {points.shape}"
            )
        self.config = config
        # Build once in a private manager, then freeze: the serving path
        # only ever sees the read-only reopen, so no request can write.
        builder = StorageManager(
            page_size=config.page_size,
            pool_pages=config.pool_pages,
            node_cache_entries=config.node_cache_entries,
        )
        index = self._build(points, builder, point_ids)
        self._spec = index.detach()
        self.snapshot = builder.snapshot()
        self.manager = StorageManager.reopen(
            self.snapshot,
            pool_pages=config.pool_pages,
            node_cache_entries=config.node_cache_entries,
        )
        self.index = PagedIndex.attach(self._spec, self.manager)
        self.dims = int(self.index.dims)
        self.size = int(self.index.size)

    def _build(
        self,
        points: np.ndarray,
        storage: StorageManager,
        point_ids: np.ndarray | None,
        universe: Rect | None = None,
    ) -> PagedIndex:
        if self.config.kind == "mbrqt":
            return build_mbrqt(points, storage, point_ids=point_ids, universe=universe)
        return build_rstar(points, storage, point_ids=point_ids)

    # -- flush execution -----------------------------------------------------

    def execute(
        self,
        requests: Sequence[Request],
        now_s: float,
        trace: Tracer | None = None,
    ) -> FlushOutcome:
        """Answer one flushed batch; every request gets an answer.

        ``now_s`` is the flush instant on the service clock — the instant
        deadlines are judged against, so degradation is a property of the
        batch, deterministic under a fake clock.
        """
        if not requests:
            raise ValueError("cannot execute an empty batch")
        if self.config.cold_flush:
            self.manager.drop_caches()
        self.manager.reset_counters()
        stats = QueryStats()
        answers: dict[int, RawAnswer] = {}
        live = [r for r in requests if not r.past_deadline(now_s)]
        late = [r for r in requests if r.past_deadline(now_s)]

        def stage(name: str) -> ContextManager[None]:
            return trace.stage(name) if trace is not None else nullcontext()

        with ExitStack() as scope:
            if trace is not None and not trace.has_source("stats"):
                scope.enter_context(trace.source("stats", stats.as_dict))
            t0 = time.process_time()
            with stage("degrade"):
                for request in late:
                    answers[request.request_id] = self._budgeted_browse(request, stats)
            mode = "degraded"
            if len(live) == 1:
                mode = "singleton"
                with stage("traverse"):
                    answers[live[0].request_id] = self._exact_single(live[0], stats)
            elif live:
                kmax = max(r.k for r in live)
                use_shards = (
                    self.config.workers > 1
                    and len(live) >= self.config.parallel_threshold
                )
                mode = "sharded" if use_shards else "batched"
                with stage("traverse"):
                    if use_shards:
                        result = self._sharded_join(live, kmax, stats, trace)
                    else:
                        result = self._batched_join(live, kmax, stats, trace)
                for i, request in enumerate(live):
                    bucket = result.neighbors_of(i)[: request.k]
                    answers[request.request_id] = (
                        tuple(s_id for __, s_id in bucket),
                        tuple(dist for dist, __ in bucket),
                        False,
                    )
            stats.cpu_time_s += time.process_time() - t0
        self._fold_io(self.manager, stats)
        return FlushOutcome(
            answers=answers,
            stats=stats,
            mode=mode,
            n_exact=len(live),
            n_degraded=len(late),
        )

    # -- execution modes -----------------------------------------------------

    def _exact_single(self, request: Request, stats: QueryStats) -> RawAnswer:
        """Singleton fallback: incremental browsing, first k results.

        Bit-identical to a standalone ``nearest_iter`` over the same
        store — the golden test's baseline and the B=1 service mode.
        """
        ids: list[int] = []
        dists: list[float] = []
        for dist, point_id, __ in nearest_iter(self.index, request.point, stats):
            ids.append(point_id)
            dists.append(dist)
            if len(ids) >= request.k:
                break
        return tuple(ids), tuple(dists), False

    def _budgeted_browse(self, request: Request, stats: QueryStats) -> RawAnswer:
        """Graceful degradation: browse under a node-expansion budget.

        The generator's frontier is exact at every step, so whatever it
        has yielded when the budget runs out is the true ordered prefix
        of the k-NN — possibly short, never wrong — flagged approximate
        because completeness was sacrificed.
        """
        budget = self.config.degrade_budget
        ids: list[int] = []
        dists: list[float] = []
        if budget > 0:
            start = stats.node_expansions
            for dist, point_id, __ in nearest_iter(self.index, request.point, stats):
                ids.append(point_id)
                dists.append(dist)
                if len(ids) >= request.k or stats.node_expansions - start >= budget:
                    break
        return tuple(ids), tuple(dists), True

    def _scratch_index(
        self, live: Sequence[Request], storage: StorageManager
    ) -> PagedIndex:
        """Pack the batch's query points into a tiny query-side index.

        Query ids are batch positions (0..n-1), so the join result maps
        straight back to requests.  The MBRQT universe is widened to
        cover the target's root cell: queries may fall outside the
        target's bounding box, and a shared universe keeps the partition
        boundaries aligned where the two trees overlap (Section 3.2).
        """
        q_points = np.stack([r.point for r in live])
        universe = None
        if self.config.kind == "mbrqt":
            root = self.index.root_rect
            universe = Rect(
                np.minimum(q_points.min(axis=0), root.lo),
                np.maximum(q_points.max(axis=0), root.hi),
            )
        return self._build(
            q_points,
            storage,
            np.arange(len(live), dtype=np.int64),
            universe=universe,
        )

    def _batched_join(
        self,
        live: Sequence[Request],
        kmax: int,
        stats: QueryStats,
        trace: Tracer | None,
    ) -> NeighborResult:
        scratch = StorageManager(
            page_size=self.config.page_size, pool_pages=SCRATCH_POOL_PAGES
        )
        q_index = self._scratch_index(live, scratch)
        result, __ = mba_join(
            q_index,
            self.index,
            metric=self.config.metric,
            k=kmax,
            exclude_self=False,
            stats=stats,
            trace=trace,
        )
        self._fold_io(scratch, stats)
        return result

    def _sharded_join(
        self,
        live: Sequence[Request],
        kmax: int,
        stats: QueryStats,
        trace: Tracer | None,
    ) -> NeighborResult:
        """Large flush: shard the scratch index across worker threads.

        Reuses the :mod:`repro.parallel` planning machinery (subtree
        roots, LPT bin-packing, Lemma 3.2 seed bounds); each thread
        reopens *both* snapshots read-only with a fair slice of the pool
        budget, so threads share no mutable storage state and the
        aggregate pool memory matches the serial flush's.
        """
        n_workers = self.config.workers
        scratch = StorageManager(
            page_size=self.config.page_size, pool_pages=SCRATCH_POOL_PAGES
        )
        q_index = self._scratch_index(live, scratch)
        roots = q_index.shard_roots(min_roots=n_workers)
        shards = pack_shards(roots, n_workers)
        q_spec = q_index.detach()
        q_snapshot = scratch.snapshot()
        self._fold_io(scratch, stats)
        target_pool = worker_pool_pages(self.config.pool_pages, len(shards))
        target_cache = worker_node_cache_entries(
            self.config.node_cache_entries, len(shards)
        )
        scratch_pool = worker_pool_pages(SCRATCH_POOL_PAGES, len(shards))
        seeds = [
            tuple(
                shard_seed_bound(
                    root.rect, self.index.root_rect, self.size, self.config.metric, kmax
                )
                for root in shard
            )
            for shard in shards
        ]
        stats.record_distances(sum(len(s) for s in seeds))

        def run_shard(
            shard: list[ShardRoot], shard_seeds: tuple[float, ...]
        ) -> tuple[NeighborResult, QueryStats]:
            target = StorageManager.reopen(
                self.snapshot, pool_pages=target_pool, node_cache_entries=target_cache
            )
            s_index = PagedIndex.attach(self._spec, target)
            q_manager = StorageManager.reopen(q_snapshot, pool_pages=scratch_pool)
            q_shard = PagedIndex.attach(q_spec, q_manager)
            # No per-thread CPU timing: ``process_time`` already sums the
            # CPU of every thread in the process, so the flush-level delta
            # in :meth:`execute` covers shard work without double counting.
            local = QueryStats()
            merged = NeighborResult(kmax)
            for root, seed in zip(shard, shard_seeds):
                part, __ = mba_join(
                    q_shard,
                    s_index,
                    metric=self.config.metric,
                    k=kmax,
                    exclude_self=False,
                    stats=local,
                    root_entry=root,
                    seed_bound=seed,
                )
                merged.merge(part)
            self._fold_io(target, local)
            self._fold_io(q_manager, local)
            return merged, local

        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            outcomes = list(pool.map(run_shard, shards, seeds))
        result = NeighborResult(kmax)
        for merged, local in outcomes:
            result.merge(merged)
            stats.merge(local)
        if trace is not None:
            trace.counter("service.shard_flush_threads", len(shards))
        return result

    @staticmethod
    def _fold_io(manager: StorageManager, stats: QueryStats) -> None:
        """Absorb a manager's I/O counters into the batch's stats."""
        io = manager.io_snapshot()
        stats.logical_reads += io["logical_reads"]
        stats.page_misses += io["page_misses"]
        stats.io_time_s += io["io_time_s"]
        stats.node_cache_hits += io["node_cache_hits"]
        stats.node_cache_misses += io["node_cache_misses"]
