"""Front-end policy: quotas, bounded admission, deadline sheds, failover.

Shedding must happen *at admission* (``Overloaded`` raised from
``submit`` before the request queues) — several tests pin that by
checking the counters name the admission stage that shed, and that shed
requests never consume replica work.  The crash test is the satellite's
"crash a replica" requirement: kill a process replica mid-stream and
assert the front-end reroutes or sheds without corrupting answers.
"""

import asyncio

import numpy as np
import pytest

from repro.serve.cluster import ReplicaCluster
from repro.serve.config import ServeConfig
from repro.serve.frontend import Frontend, TokenBucket
from repro.service.config import ServiceConfig
from repro.service.engine import BatchEngine
from repro.service.queueing import Overloaded, ServiceClosed
from repro.service.request import Request

RNG = np.random.default_rng(20260809)


def make_points(n=48, dims=2):
    return RNG.normal(size=(n, dims)) * 10.0


def serve_config(**kwargs):
    kwargs.setdefault(
        "service", ServiceConfig(cold_flush=False, pool_pages=32)
    )
    return ServeConfig(**kwargs)


@pytest.fixture
def points():
    return make_points()


def run(coro):
    return asyncio.run(coro)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, now_fn=lambda: clock[0])
        assert bucket.allow() and bucket.allow()
        assert not bucket.allow()  # burst exhausted, no time passed
        clock[0] = 1.0
        assert bucket.allow()  # one second → one token back
        assert not bucket.allow()

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=100.0, burst=3, now_fn=lambda: clock[0])
        clock[0] = 60.0
        for _ in range(3):
            assert bucket.allow()
        assert not bucket.allow()

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1, now_fn=lambda: 0.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0, now_fn=lambda: 0.0)


class TestSubmitPath:
    def test_answers_bit_identical_to_engine(self, points, tmp_path):
        # The end-to-end serving bar: front-end answers equal the
        # in-process engine's RawAnswers for the same points, exactly.
        config = serve_config(replicas=2)
        engine = BatchEngine(points, config.service)
        queries = [points[i] + 0.05 for i in range(10)]
        want = engine.execute(
            [
                Request(i, q, k=3, submitted_s=0.0, deadline_s=None)
                for i, q in enumerate(queries)
            ],
            now_s=0.0,
        ).answers

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=True) as cluster:
                async with Frontend(cluster) as frontend:
                    return await asyncio.gather(
                        *(frontend.submit(q, k=3) for q in queries)
                    )

        answers = run(go())
        for i, answer in enumerate(answers):
            ids, dists, approx = want[i]
            assert answer.neighbor_ids == ids
            assert answer.distances == dists
            assert answer.approximate == approx

    def test_counters_and_drain_sections(self, points, tmp_path):
        config = serve_config(replicas=2)

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=True) as cluster:
                frontend = Frontend(cluster)
                await frontend.start()
                await asyncio.gather(
                    *(frontend.submit(points[i], k=2) for i in range(6))
                )
                sections = await frontend.drain()
                return frontend.counters, sections

        counters, sections = run(go())
        assert counters.admitted == 6
        assert counters.answered == 6
        assert counters.batches >= 1
        assert sections["service"]["answered"] == 6.0
        assert set(sections["replica"]) == {"replica-0", "replica-1"}
        answered = sum(
            r.get("answered", 0.0) for r in sections["replica"].values()
        )
        assert answered == 6.0
        assert all("io.logical_reads" in r for r in sections["replica"].values())

    def test_submit_after_drain_is_closed(self, points, tmp_path):
        config = serve_config(replicas=1)

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=True) as cluster:
                frontend = Frontend(cluster)
                await frontend.start()
                await frontend.drain()
                with pytest.raises(ServiceClosed):
                    await frontend.submit(points[0], k=1)

        run(go())

    def test_trace_artifact_has_replica_section(self, points, tmp_path):
        import json

        trace_path = tmp_path / "serve-trace.json"
        config = serve_config(replicas=2, trace=trace_path)

        async def go():
            with ReplicaCluster(
                points, config, tmp_path / "epochs", inline=True
            ) as cluster:
                async with Frontend(cluster) as frontend:
                    await frontend.submit(points[0], k=2)

        run(go())
        doc = json.loads(trace_path.read_text())
        from repro.obs.schema import validate_trace

        validate_trace(doc)
        assert doc["service"]["admitted"] == 1.0
        assert "replica-0" in doc["replica"]
        assert doc["meta"]["component"] == "repro.serve"


class TestShedding:
    def test_quota_shed(self, points, tmp_path):
        config = serve_config(replicas=1, quota_rps=0.001, quota_burst=2)

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=True) as cluster:
                async with Frontend(cluster) as frontend:
                    await frontend.submit(points[0], k=1, client="alice")
                    await frontend.submit(points[1], k=1, client="alice")
                    with pytest.raises(Overloaded):
                        await frontend.submit(points[2], k=1, client="alice")
                    # Quotas are per client: bob is unaffected.
                    await frontend.submit(points[3], k=1, client="bob")
                    return frontend.counters

        counters = run(go())
        assert counters.shed_quota == 1
        assert counters.answered == 3

    def test_admission_bound_sheds_before_queueing(self, points, tmp_path):
        config = serve_config(replicas=1, admission_capacity=2, max_batch=2)

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=True) as cluster:
                frontend = Frontend(cluster)
                await frontend.start()
                # Fill the admission window without yielding to the
                # dispatcher: both tickets sit queued, capacity reached.
                lane, t1 = frontend._admit(points[0], 1, "c", None)
                frontend._enqueue(lane, t1)
                lane2, t2 = frontend._admit(points[1], 1, "c", None)
                frontend._enqueue(lane2, t2)
                with pytest.raises(Overloaded):
                    frontend._admit(points[2], 1, "c", None)
                assert frontend.counters.shed_overload == 1
                await asyncio.gather(t1.future, t2.future)
                await frontend.drain()
                return frontend.counters

        counters = run(go())
        assert counters.answered == 2

    def test_deadline_shed_uses_backlog_estimate(self, points, tmp_path):
        config = serve_config(replicas=1, deadline_ms=10.0)

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=True) as cluster:
                frontend = Frontend(cluster)
                await frontend.start()
                lane = frontend._lanes[0]
                # A lane whose one-batch EWMA already exceeds the 10ms
                # budget must shed at admission, not queue-and-degrade.
                lane.ewma_batch_s = 5.0
                lane.queue.append(object())  # backlog of one
                with pytest.raises(Overloaded):
                    frontend._admit(points[0], 1, "c", None)
                assert frontend.counters.shed_deadline == 1
                lane.queue.clear()
                await frontend.drain()

        run(go())

    def test_empty_backlog_never_deadline_sheds(self, points, tmp_path):
        config = serve_config(replicas=1, deadline_ms=0.001)

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=True) as cluster:
                async with Frontend(cluster) as frontend:
                    # Impossibly tight deadline, but zero backlog: the
                    # request is admitted (and will degrade downstream
                    # rather than shed) — admission sheds on *wait*, not
                    # on execution time it cannot know.
                    answer = await frontend.submit(points[0], k=1)
                    assert answer is not None

        run(go())


class TestRouting:
    def test_least_loaded_lane_chosen(self, points, tmp_path):
        config = serve_config(replicas=3)

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=True) as cluster:
                frontend = Frontend(cluster)
                await frontend.start()
                frontend._lanes[0].inflight = 5
                frontend._lanes[1].inflight = 1
                frontend._lanes[2].inflight = 3
                lane, ticket = frontend._admit(points[0], 1, "c", None)
                assert lane is frontend._lanes[1]
                for ln in frontend._lanes:
                    ln.inflight = 0
                frontend._enqueue(lane, ticket)
                await ticket.future
                await frontend.drain()

        run(go())


class TestCrashFailover:
    def test_killed_replica_reroutes_without_corruption(self, points, tmp_path):
        # Process-mode fleet; kill one replica mid-stream.  Every answer
        # that arrives must still be bit-identical to the single-process
        # engine — a reroute re-executes on an identical mapped epoch,
        # it never invents data.
        config = serve_config(replicas=2, max_batch=4)
        engine = BatchEngine(points, config.service)
        queries = [points[i % len(points)] + 0.05 for i in range(24)]
        want = engine.execute(
            [
                Request(i, q, k=3, submitted_s=0.0, deadline_s=None)
                for i, q in enumerate(queries)
            ],
            now_s=0.0,
        ).answers

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=False) as cluster:
                async with Frontend(cluster) as frontend:
                    tasks = [
                        asyncio.create_task(frontend.submit(q, k=3))
                        for q in queries
                    ]
                    await asyncio.sleep(0)  # let tickets queue
                    cluster.replicas[0].kill()
                    results = await asyncio.gather(
                        *tasks, return_exceptions=True
                    )
                    return results, frontend.counters

        results, counters = run(go())
        answered = 0
        for i, result in enumerate(results):
            if isinstance(result, BaseException):
                # Allowed only as an explicit shed/closed, never a
                # protocol error leaking through.
                assert isinstance(result, (Overloaded, ServiceClosed))
                continue
            answered += 1
            ids, dists, approx = want[i]
            assert result.neighbor_ids == ids
            assert result.distances == dists
        # The surviving replica answered the stream (reroutes included).
        assert answered == len(queries)
        assert counters.replica_deaths == 1
        assert counters.rerouted > 0

    def test_all_replicas_dead_fails_closed(self, points, tmp_path):
        config = serve_config(replicas=1)

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=False) as cluster:
                async with Frontend(cluster) as frontend:
                    await frontend.submit(points[0], k=1)  # warm path works
                    cluster.replicas[0].kill()
                    cluster.replicas[0]._proc.join(timeout=30)
                    with pytest.raises((Overloaded, ServiceClosed)):
                        # Either the dead pipe is discovered now (this
                        # submit's batch errors → ServiceClosed) or
                        # admission already knows there is no live lane.
                        await frontend.submit(points[1], k=1)
                    with pytest.raises(ServiceClosed):
                        await frontend.submit(points[2], k=1)

        run(go())


class TestSocketServer:
    def test_ndjson_roundtrip(self, points, tmp_path):
        config = serve_config(replicas=1)

        async def go():
            with ReplicaCluster(points, config, tmp_path, inline=True) as cluster:
                frontend = Frontend(cluster)
                await frontend.start()
                host, port = await frontend.serve()
                reader, writer = await asyncio.open_connection(host, port)
                import json

                msg = {
                    "op": "query",
                    "id": 42,
                    "point": [float(points[0][0]), float(points[0][1])],
                    "k": 1,
                }
                writer.write(json.dumps(msg).encode() + b"\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                writer.write(b'{"op": "stats"}\n')
                await writer.drain()
                stats = json.loads(await reader.readline())
                writer.write(b'{"op": "nope"}\n')
                await writer.drain()
                unknown = json.loads(await reader.readline())
                writer.close()
                await frontend.drain()
                return reply, stats, unknown

        reply, stats, unknown = run(go())
        assert reply["id"] == 42
        # Self-query: the nearest neighbour of a dataset point is itself.
        assert reply["distances"][0] == 0.0
        assert reply["approximate"] is False
        assert stats["service"]["answered"] == 1.0
        assert "error" in unknown
