"""Extension ablation: the count-aware AkNN bound.

Beyond the paper: stored subtree counts let MAXMAXDIST prove k points
from a single entry, while NXNDIST's per-entry guarantee (Lemma 3.1)
admits only entry counting.  This quantifies that asymmetry at k = 20.
"""

from conftest import emit

from repro.bench import ablation_count_bound, format_table


def test_count_bound(benchmark, results_dir):
    runs = benchmark.pedantic(ablation_count_bound, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_count_bound",
        format_table("Extension — count-aware AkNN bound (k=20)", runs),
    )
    by = {r.label: r for r in runs}
    assert by["AkNN NXNDIST"].stats.result_pairs == by["AkNN MAXMAXDIST"].stats.result_pairs
