"""Tests for the pluggable pruning metric switch."""

import numpy as np

from repro.core.geometry import RectArray
from repro.core.metrics import (
    maxmaxdist,
    maxmaxdist_batch,
    maxmaxdist_cross,
    nxndist,
    nxndist_batch,
    nxndist_cross,
)
from repro.core.pruning import PruningMetric
from tests.conftest import random_rect


class TestDispatch:
    def test_scalar_dispatch(self, rng):
        m, n = random_rect(rng, 2), random_rect(rng, 2)
        assert PruningMetric.NXNDIST.scalar(m, n) == nxndist(m, n)
        assert PruningMetric.MAXMAXDIST.scalar(m, n) == maxmaxdist(m, n)

    def test_batch_dispatch(self, rng):
        m = random_rect(rng, 3)
        targets = RectArray.from_rects([random_rect(rng, 3) for _ in range(5)])
        assert np.array_equal(
            PruningMetric.NXNDIST.batch(m, targets), nxndist_batch(m, targets)
        )
        assert np.array_equal(
            PruningMetric.MAXMAXDIST.batch(m, targets), maxmaxdist_batch(m, targets)
        )

    def test_cross_dispatch(self, rng):
        a = RectArray.from_rects([random_rect(rng, 2) for _ in range(3)])
        b = RectArray.from_rects([random_rect(rng, 2) for _ in range(4)])
        assert np.array_equal(PruningMetric.NXNDIST.cross(a, b), nxndist_cross(a, b))
        assert np.array_equal(
            PruningMetric.MAXMAXDIST.cross(a, b), maxmaxdist_cross(a, b)
        )

    def test_str_form(self):
        assert str(PruningMetric.NXNDIST) == "NXNDIST"
        assert str(PruningMetric.MAXMAXDIST) == "MAXMAXDIST"

    def test_members(self):
        assert set(PruningMetric) == {PruningMetric.NXNDIST, PruningMetric.MAXMAXDIST}

    def test_nxndist_never_looser(self, rng):
        # The whole point of the paper: per-pair, NXNDIST <= MAXMAXDIST.
        for __ in range(50):
            m, n = random_rect(rng, 4), random_rect(rng, 4)
            assert PruningMetric.NXNDIST.scalar(m, n) <= (
                PruningMetric.MAXMAXDIST.scalar(m, n) + 1e-9
            )
