"""Decoded-node LRU cache layered *above* the buffer pool.

The buffer pool caches page bytes (plus a per-page memo of nodes decoded
from them), so a node's Python-side decode cost is re-paid every time its
page re-enters the pool.  During MBA's bi-directional expansion many
sibling LPQs probe the same target node within a short window, and on the
paper's deliberately small pools (512 KB) those probes routinely straddle
an eviction.  :class:`DecodedNodeCache` keeps the *decoded* node objects
alive across pool evictions, the way an application-level object cache
sits above a DBMS buffer manager.

Accounting contract (kept deliberately explicit because the Figure 3(b)
experiments sweep pool size):

* A cache **hit** short-circuits the buffer pool entirely: no logical
  read, no miss, no simulated I/O.  Hits and misses are counted here and
  surfaced through :meth:`~repro.storage.manager.StorageManager.io_snapshot`
  and :class:`~repro.core.stats.QueryStats` (``node_cache_hits`` /
  ``node_cache_misses``), so a run's I/O numbers are always read next to
  the cache traffic that explains them.
* The cache budget is counted in *entries* (decoded nodes), configured on
  the :class:`~repro.storage.manager.StorageManager`; a budget of 0
  disables the layer and reproduces the pre-cache I/O counters exactly.
* The sharded executor slices the budget ``entries // n_workers`` per
  worker (mirroring the buffer-pool slicing), so a parallel run's
  aggregate decoded-cache memory never exceeds the serial run's.

The cache is invalidated whenever the underlying store may stop being
the one the cached nodes were decoded from: on
:meth:`StorageManager.snapshot`, on :meth:`StorageManager.drop_caches`
(cold-start discipline), and on :meth:`NodeFile.spec`/``detach`` (the
file is about to be reattached elsewhere).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

__all__ = ["DecodedNodeCache", "NodeKey"]

NodeKey = tuple[int, int]
"""Cache key: ``(file uid, node id)`` — node ids are per-file."""


class DecodedNodeCache:
    """Fixed-budget LRU map of ``(file_uid, node_id) -> decoded node``."""

    __slots__ = ("max_entries", "_entries", "hits", "misses")

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[NodeKey, Any] = OrderedDict()  # guarded-by: owner
        self.hits = 0  # guarded-by: owner
        self.misses = 0  # guarded-by: owner

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: NodeKey) -> bool:
        return key in self._entries

    def get(self, key: NodeKey) -> Any | None:
        """The cached node for ``key``, or ``None`` (counted hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: NodeKey, node: Any) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries over budget."""
        self._entries[key] = node
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached node (counters are kept)."""
        self._entries.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (cached nodes are kept)."""
        self.hits = 0
        self.misses = 0

    def counters(self) -> dict[str, int]:
        """Flat hit/miss counters (a tracer counter source)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
