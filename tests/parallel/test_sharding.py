"""Tests for shard planning: subtree roots, bin-packing, seed bounds."""

import math

import pytest

from repro.api import build_index
from repro.core.geometry import Rect
from repro.core.pruning import PruningMetric
from repro.data import gstd
from repro.index.base import ShardRoot
from repro.parallel.sharding import pack_shards, shard_seed_bound
from repro.storage.manager import StorageManager


def make_index(kind, n=800, seed=11):
    pts = gstd.generate(n, 2, "gaussian", seed=seed)
    storage = StorageManager.with_pool_bytes(64 * 1024, 1024)
    return build_index(pts, storage, kind=kind), storage


class TestShardRoots:
    @pytest.mark.parametrize("kind", ["mbrqt", "rstar"])
    def test_counts_partition_the_index(self, kind):
        index, __ = make_index(kind)
        roots = index.shard_roots(min_roots=4)
        assert len(roots) >= 4
        assert sum(r.count for r in roots) == index.size
        assert all(r.count > 0 for r in roots)
        ids = [r.node_id for r in roots]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    @pytest.mark.parametrize("kind", ["mbrqt", "rstar"])
    def test_min_roots_one_is_the_root_itself(self, kind):
        index, __ = make_index(kind)
        roots = index.shard_roots(min_roots=1)
        assert roots == [ShardRoot(index.root_id, index.size, index.root_rect)]

    @pytest.mark.parametrize("kind", ["mbrqt", "rstar"])
    def test_deterministic(self, kind):
        a, __ = make_index(kind)
        b, __ = make_index(kind)
        assert a.shard_roots(min_roots=6) == b.shard_roots(min_roots=6)

    def test_tiny_index_caps_at_leaves(self):
        # A handful of points fits one leaf: splitting cannot go below it.
        index, __ = make_index("mbrqt", n=5)
        roots = index.shard_roots(min_roots=64)
        assert sum(r.count for r in roots) == index.size


def roots_of(counts):
    unit = Rect([0.0, 0.0], [1.0, 1.0])
    return [ShardRoot(i, c, unit) for i, c in enumerate(counts)]


class TestPackShards:
    def test_balances_heaviest_first(self):
        shards = pack_shards(roots_of([10, 1, 9, 2, 8, 3]), 2)
        loads = sorted(sum(r.count for r in s) for s in shards)
        assert loads == [16, 17]

    def test_no_empty_shards(self):
        shards = pack_shards(roots_of([5, 5]), 8)
        assert len(shards) == 2
        assert all(s for s in shards)

    def test_all_roots_preserved_once(self):
        roots = roots_of([7, 3, 3, 3, 1])
        shards = pack_shards(roots, 3)
        flat = [r for s in shards for r in s]
        assert sorted(flat, key=lambda r: r.node_id) == roots

    def test_deterministic_and_sorted_within_shard(self):
        roots = roots_of([4, 4, 4, 4])
        first = pack_shards(roots, 2)
        second = pack_shards(list(reversed(roots)), 2)
        assert first == second
        for shard in first:
            assert [r.node_id for r in shard] == sorted(r.node_id for r in shard)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="n_shards"):
            pack_shards(roots_of([1]), 0)
        with pytest.raises(ValueError, match="empty"):
            pack_shards([], 2)


class TestShardSeedBound:
    def setup_method(self):
        self.shard = Rect([0.0, 0.0], [1.0, 1.0])
        self.target = Rect([2.0, 0.0], [4.0, 1.0])

    def test_ann_uses_the_metric_itself(self):
        for metric in (PruningMetric.NXNDIST, PruningMetric.MAXMAXDIST):
            expected = metric.scalar(self.shard, self.target)
            assert shard_seed_bound(self.shard, self.target, 100, metric, 1) == expected

    def test_aknn_escalates_to_maxmaxdist(self):
        # NXNDIST guarantees only one point per entry (Lemma 3.1), so a
        # need_count>1 seed must fall back to the all-points bound.
        bound = shard_seed_bound(self.shard, self.target, 100, PruningMetric.NXNDIST, 3)
        assert bound == PruningMetric.MAXMAXDIST.scalar(self.shard, self.target)

    def test_small_target_is_unbounded(self):
        bound = shard_seed_bound(self.shard, self.target, 2, PruningMetric.NXNDIST, 3)
        assert bound == math.inf
