"""Tests for NodeFile: multi-page nodes and buffer-pool integration."""

from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import PageStore
from repro.storage.node_file import NodeFile


def make_file(page_size=32, capacity=4):
    store = PageStore(page_size=page_size)
    pool = BufferPool(store, capacity_pages=capacity)
    return store, pool, NodeFile(pool)


class TestNodeFile:
    def test_single_page_roundtrip(self):
        __, __, f = make_file()
        nid = f.append_node(b"hello")
        assert f.node_pages(nid) == 1
        assert f.read_node(nid, bytes) == b"hello"

    def test_multi_page_node_chunks(self):
        store, pool, f = make_file(page_size=8)
        payload = bytes(range(20))  # 3 pages of 8
        nid = f.append_node(payload)
        assert f.node_pages(nid) == 3
        assert f.read_node(nid, bytes) == payload

    def test_empty_node(self):
        __, __, f = make_file()
        nid = f.append_node(b"")
        assert f.node_pages(nid) == 1
        assert f.read_node(nid, bytes) == b""

    def test_read_counts_pages_not_nodes(self):
        store, pool, f = make_file(page_size=8, capacity=10)
        nid = f.append_node(bytes(16))  # 2 pages
        store.reset_counters()
        pool.reset_counters()
        f.read_node(nid, bytes)
        assert pool.logical_reads == 2
        assert pool.misses == 2
        # Second read hits the decoded-node memo on the resident first page.
        f.read_node(nid, bytes)
        assert pool.logical_reads == 3
        assert pool.misses == 2

    def test_files_share_pool_but_not_ids(self):
        store = PageStore(page_size=32)
        pool = BufferPool(store, capacity_pages=4)
        f1, f2 = NodeFile(pool), NodeFile(pool)
        a = f1.append_node(b"one")
        b = f2.append_node(b"two")
        assert a == b == 0  # per-file node ids
        assert f1.read_node(a, bytes) == b"one"
        assert f2.read_node(b, bytes) == b"two"

    def test_total_pages(self):
        __, __, f = make_file(page_size=8)
        f.append_node(bytes(16))
        f.append_node(bytes(4))
        assert f.total_pages == 3
        assert len(f) == 2


class TestPackedPages:
    def test_small_nodes_share_pages(self):
        store = PageStore(page_size=64)
        pool = BufferPool(store, capacity_pages=8)
        f = NodeFile(pool, pack_pages=True)
        ids = [f.append_node(bytes([i]) * 16) for i in range(4)]
        f.flush()
        # Four 16-byte nodes fit one 64-byte page.
        assert f.total_pages == 1
        for i, nid in enumerate(ids):
            assert f.read_node(nid, bytes) == bytes([i]) * 16

    def test_packed_overflow_opens_new_page(self):
        store = PageStore(page_size=64)
        pool = BufferPool(store, capacity_pages=8)
        f = NodeFile(pool, pack_pages=True)
        ids = [f.append_node(bytes([i]) * 40) for i in range(3)]
        f.flush()
        assert f.total_pages == 3  # 40B nodes cannot share a 64B page
        for i, nid in enumerate(ids):
            assert f.read_node(nid, bytes) == bytes([i]) * 40

    def test_wide_node_in_packed_file(self):
        store = PageStore(page_size=32)
        pool = BufferPool(store, capacity_pages=8)
        f = NodeFile(pool, pack_pages=True)
        small = f.append_node(b"tiny")
        wide = f.append_node(bytes(range(80)))  # 3 pages
        f.flush()
        assert f.node_pages(wide) == 3
        assert f.read_node(small, bytes) == b"tiny"
        assert f.read_node(wide, bytes) == bytes(range(80))

    def test_shared_page_one_miss_for_both_nodes(self):
        store = PageStore(page_size=64)
        pool = BufferPool(store, capacity_pages=8)
        f = NodeFile(pool, pack_pages=True)
        a = f.append_node(b"a" * 20)
        b = f.append_node(b"b" * 20)
        f.flush()
        store.reset_counters()
        pool.reset_counters()
        f.read_node(a, bytes)
        f.read_node(b, bytes)
        assert pool.misses == 1  # both live on the same page

    def test_memoised_decode(self):
        store = PageStore(page_size=64)
        pool = BufferPool(store, capacity_pages=8)
        f = NodeFile(pool, pack_pages=True)
        nid = f.append_node(b"payload")
        f.flush()
        calls = []

        def decode(b):
            calls.append(b)
            return b.decode()

        assert f.read_node(nid, decode) == "payload"
        assert f.read_node(nid, decode) == "payload"
        assert len(calls) == 1
        # After eviction, decode runs again.
        pool.clear()
        assert f.read_node(nid, decode) == "payload"
        assert len(calls) == 2
