"""GORDER — kNN join by PCA + grid-order sorting + block nested loops
(Xia, Lu, Ooi, Hu — VLDB 2004).

The strongest *non-indexed* baseline in the paper.  Three phases:

1. **G-ordering**: both datasets are shifted/rotated into the union PCA
   space (an isometry, so distances are unchanged), a grid is imposed, and
   points are sorted by lexicographic grid-cell order — most significant
   principal component first.
2. **Write-back**: the sorted datasets are written to disk in blocks
   (counted page writes).  Per-block MBRs and counts are retained as the
   in-memory grid metadata.
3. **Scheduled block nested loops join**: for each query block, candidate
   target blocks are scanned in G-order (the original schedule; an
   improved MINMINDIST-first schedule is available via ``schedule=``) and
   skipped against a two-part bound — a MAXMAXDIST-based block bound
   available *before* any point distances (the ANN paper notes GORDER's
   pruning metric "is essentially MAXMAXDIST"), then the worst per-point
   k-th-best distance once blocks are scanned.  Surviving block pairs go
   through two-tier sub-block pruning before point distances are
   computed.  Block reads go through the shared buffer pool, which is
   what makes GORDER's performance sensitive to the pool size at high
   dimensionality (paper Figure 3(b)).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.geometry import Rect, RectArray
from ..core.metrics import maxmaxdist_batch, minmindist_batch, minmindist_cross
from ..core.result import NeighborResult
from ..core.stats import QueryStats
from ..storage.manager import StorageManager

__all__ = ["gorder_join", "GOrderedFile", "pca_transform", "grid_order"]


def pca_transform(
    r_points: np.ndarray, s_points: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Rotate both datasets into the principal-component space of their union.

    Components are ordered by decreasing variance.  The transform is an
    isometry (orthonormal basis), so nearest neighbours are preserved.
    """
    union = np.concatenate([r_points, s_points], axis=0)
    mean = union.mean(axis=0)
    centered = union - mean
    cov = np.cov(centered, rowvar=False)
    cov = np.atleast_2d(cov)
    eigvals, eigvecs = np.linalg.eigh(cov)
    basis = eigvecs[:, np.argsort(eigvals)[::-1]]  # descending variance
    return (r_points - mean) @ basis, (s_points - mean) @ basis


def grid_order(points: np.ndarray, lo: np.ndarray, hi: np.ndarray, segments: int) -> np.ndarray:
    """Permutation sorting points by lexicographic grid-cell id.

    The first (highest-variance) dimension is the most significant sort
    key, per the GORDER paper's recommendation.
    """
    extent = hi - lo
    extent = np.where(extent == 0, 1.0, extent)
    cells = np.clip(((points - lo) / extent * segments).astype(np.int64), 0, segments - 1)
    # np.lexsort uses the *last* key as primary; feed dims reversed.
    return np.lexsort(tuple(cells[:, d] for d in range(points.shape[1] - 1, -1, -1)))


class GOrderedFile:
    """A G-ordered dataset written to disk in blocks.

    ``blocks`` holds, per block, the ids/points slice boundaries, page ids,
    and the block MBR (the in-memory grid metadata GORDER keeps).
    """

    def __init__(
        self,
        storage: StorageManager,
        points: np.ndarray,
        ids: np.ndarray,
        points_per_block: int,
    ) -> None:
        self.storage = storage
        self.points = points  # already G-ordered
        self.ids = ids
        self.points_per_block = points_per_block
        self.block_page_ids: list[list[int]] = []
        self.block_slices: list[tuple[int, int]] = []

        dims = points.shape[1]
        bytes_per_point = 8 * (dims + 1)  # id + coords
        points_per_page = max(1, storage.page_size // bytes_per_point)

        lo_rows, hi_rows, counts = [], [], []
        for start in range(0, len(points), points_per_block):
            stop = min(start + points_per_block, len(points))
            block_pts = points[start:stop]
            pages = []
            for pstart in range(start, stop, points_per_page):
                pstop = min(pstart + points_per_page, stop)
                payload = (
                    ids[pstart:pstop].astype(np.int64).tobytes()
                    + points[pstart:pstop].tobytes()
                )
                pages.append(storage.store.allocate(payload))
            self.block_page_ids.append(pages)
            self.block_slices.append((start, stop))
            lo_rows.append(block_pts.min(axis=0))
            hi_rows.append(block_pts.max(axis=0))
            counts.append(stop - start)
        self.block_rects = RectArray(np.stack(lo_rows), np.stack(hi_rows))
        self.block_counts = np.asarray(counts, dtype=np.int64)

    @property
    def n_blocks(self) -> int:
        return len(self.block_slices)

    def read_block(self, block: int) -> tuple[np.ndarray, np.ndarray]:
        """Fetch one block's (ids, points) through the buffer pool.

        The decoded payloads are the cached frames; the in-memory arrays
        kept by this object are *not* consulted on the read path, so misses
        and simulated I/O accrue exactly as for the index files.
        """
        start, stop = self.block_slices[block]
        ids = self.ids[start:stop]
        pts = self.points[start:stop]
        for page_id in self.block_page_ids[block]:
            self.storage.pool.fetch(page_id, lambda payload: payload)
        return ids, pts

    def block_rect(self, block: int) -> Rect:
        """MBR of one block (from the in-memory grid metadata)."""
        return self.block_rects[block]


def gorder_join(
    r_points: np.ndarray,
    s_points: np.ndarray,
    storage: StorageManager,
    r_ids: np.ndarray | None = None,
    s_ids: np.ndarray | None = None,
    k: int = 1,
    exclude_self: bool = False,
    segments: int = 64,
    points_per_block: int = 256,
    schedule: str = "gorder",
    stats: QueryStats | None = None,
) -> tuple[NeighborResult, QueryStats]:
    """Full GORDER kNN join (preprocessing + scheduled join).

    ``segments`` is the grid resolution per dimension and
    ``points_per_block`` the scheduling block size — both follow the
    magnitudes the GORDER paper recommends for its optimal settings.

    ``schedule`` picks the order in which candidate target blocks are
    visited per query block:

    * ``"gorder"`` (default, the original algorithm): sequential G-order
      scan with distance-based skipping.  The pruning bound tightens only
      as the scan reaches nearby blocks, which is what makes GORDER
      sensitive to the buffer pool at high dimensionality (paper Figure
      3(b), footnote 1).
    * ``"mindist"``: an improved schedule that visits blocks by ascending
      MINMINDIST, tightening the bound as early as possible.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if schedule not in ("gorder", "mindist"):
        raise ValueError(f"unknown schedule {schedule!r} (expected 'gorder' or 'mindist')")
    r_points = np.asarray(r_points, dtype=np.float64)
    s_points = np.asarray(s_points, dtype=np.float64)
    if r_ids is None:
        r_ids = np.arange(len(r_points), dtype=np.int64)
    if s_ids is None:
        s_ids = np.arange(len(s_points), dtype=np.int64)
    stats = stats if stats is not None else QueryStats()

    # Phase 1: PCA + grid-order sort.
    r_t, s_t = pca_transform(r_points, s_points)
    union_lo = np.minimum(r_t.min(axis=0), s_t.min(axis=0))
    union_hi = np.maximum(r_t.max(axis=0), s_t.max(axis=0))
    r_perm = grid_order(r_t, union_lo, union_hi, segments)
    s_perm = grid_order(s_t, union_lo, union_hi, segments)

    # Phase 2: write both datasets back in sorted order (counted I/O).
    r_file = GOrderedFile(storage, r_t[r_perm], r_ids[r_perm], points_per_block)
    s_file = GOrderedFile(storage, s_t[s_perm], s_ids[s_perm], points_per_block)

    # Phase 3: scheduled block nested loops.
    result = NeighborResult(k)
    need = k + 1 if exclude_self else k
    for rb in range(r_file.n_blocks):
        ids, pts = r_file.read_block(rb)
        _join_block(
            ids,
            pts,
            r_file.block_rect(rb),
            s_file,
            k,
            need,
            exclude_self,
            schedule,
            result,
            stats,
        )
    result.finalize()
    stats.result_pairs += result.pair_count()
    return result, stats


def _join_block(
    ids: np.ndarray,
    pts: np.ndarray,
    rect: Rect,
    s_file: GOrderedFile,
    k: int,
    need: int,
    exclude_self: bool,
    schedule: str,
    result: NeighborResult,
    stats: QueryStats,
) -> None:
    m = len(pts)
    best_d = np.full((m, k), np.inf)
    best_i = np.full((m, k), -1, dtype=np.int64)

    minds = minmindist_batch(rect, s_file.block_rects)
    maxds = maxmaxdist_batch(rect, s_file.block_rects)
    stats.record_distances(2 * len(minds))

    # Block-level upper bound before any distances: smallest MAXMAXDIST
    # radius whose blocks jointly guarantee `need` points (blocks are
    # disjoint, so counts add up).
    order_by_max = np.argsort(maxds, kind="stable")
    cum = np.cumsum(s_file.block_counts[order_by_max])
    reach = int(np.searchsorted(cum, need))
    bound = float(maxds[order_by_max[reach]]) if reach < len(cum) else math.inf

    # Two-tier partitioning (GORDER paper, Section 5): each block is split
    # into G-order-contiguous sub-blocks; per-point distances are computed
    # only for sub-block pairs whose MBR MINMINDIST passes the bound.
    sub = max(16, len(pts) // 8)
    r_subs = [(s, min(s + sub, m)) for s in range(0, m, sub)]
    r_sub_rects = RectArray(
        np.stack([pts[a:b].min(axis=0) for a, b in r_subs]),
        np.stack([pts[a:b].max(axis=0) for a, b in r_subs]),
    )

    if schedule == "mindist":
        visit_order = np.argsort(minds, kind="stable")
    else:
        # Original GORDER: sequential scan in G-order with skipping.
        visit_order = np.arange(len(minds))
    for sb in visit_order:
        if minds[sb] > bound:
            stats.pruned_entries += 1
            continue
        s_ids_blk, s_pts_blk = s_file.read_block(int(sb))
        n_s = len(s_pts_blk)
        s_subs = [(s, min(s + sub, n_s)) for s in range(0, n_s, sub)]
        s_sub_rects = RectArray(
            np.stack([s_pts_blk[a:b].min(axis=0) for a, b in s_subs]),
            np.stack([s_pts_blk[a:b].max(axis=0) for a, b in s_subs]),
        )
        sub_minds = minmindist_cross(r_sub_rects, s_sub_rects)
        stats.record_distances(sub_minds.size)

        for ri, (ra, rb_) in enumerate(r_subs):
            r_bound = float(best_d[ra:rb_, k - 1].max())
            r_bound = min(r_bound, bound)
            for si in np.nonzero(sub_minds[ri] <= r_bound)[0]:
                sa, sb_ = s_subs[si]
                diffs = pts[ra:rb_, None, :] - s_pts_blk[None, sa:sb_, :]
                dists = np.sqrt(np.sum(diffs * diffs, axis=2))
                stats.record_distances(dists.size)
                if exclude_self:
                    same = ids[ra:rb_, None] == s_ids_blk[None, sa:sb_]
                    dists = np.where(same, np.inf, dists)
                _merge_k_best(
                    best_d, best_i, dists, s_ids_blk[sa:sb_], ra, rb_, k
                )
        bound = min(bound, float(best_d[:, k - 1].max()))

    for row in range(m):
        valid = np.isfinite(best_d[row])
        result.add_many(int(ids[row]), best_i[row][valid], best_d[row][valid])


def _merge_k_best(
    best_d: np.ndarray,
    best_i: np.ndarray,
    dists: np.ndarray,
    s_ids: np.ndarray,
    row_lo: int,
    row_hi: int,
    k: int,
) -> None:
    """Merge new candidate distances into the per-point k-best tables."""
    cand_d = np.concatenate([best_d[row_lo:row_hi], dists], axis=1)
    blk_ids = np.broadcast_to(s_ids.astype(np.int64), dists.shape)
    cand_i = np.concatenate([best_i[row_lo:row_hi], blk_ids], axis=1)
    part = np.argpartition(cand_d, k - 1, axis=1)[:, :k]
    rows = np.arange(row_hi - row_lo)[:, None]
    new_d = cand_d[rows, part]
    new_i = cand_i[rows, part]
    inner = np.argsort(new_d, axis=1, kind="stable")
    best_d[row_lo:row_hi] = new_d[rows, inner]
    best_i[row_lo:row_hi] = new_i[rows, inner]
